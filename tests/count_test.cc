// Tests for disttrack/count: the coarse n̄ tracker, the trivial
// deterministic protocol, and the randomized protocol of §2.1 — including
// Lemma 2.1 (unbiasedness / variance), Theorem 2.1 (error with probability
// >= 0.9, O(1) site space, √k/ε·logN communication), and the boundary-
// estimator ablation.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "disttrack/count/coarse_tracker.h"
#include "disttrack/count/deterministic_count.h"
#include "disttrack/count/randomized_count.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace count {
namespace {

using stream::MakeCountWorkload;
using stream::SiteSchedule;

TEST(CoarseTrackerTest, NBarIsConstantFactorApproximation) {
  sim::CommMeter meter(4);
  CoarseTracker coarse(4, &meter);
  Rng rng(3);
  uint64_t n = 0;
  for (int i = 0; i < 100000; ++i) {
    coarse.Arrive(static_cast<int>(rng.UniformU64(4)));
    ++n;
    ASSERT_GE(n, coarse.n_bar());
    ASSERT_LT(n, 4 * std::max<uint64_t>(1, coarse.n_bar()));
  }
  EXPECT_GT(coarse.round(), 10u);
}

TEST(CoarseTrackerTest, FirstElementBroadcastsImmediately) {
  sim::CommMeter meter(4);
  CoarseTracker coarse(4, &meter);
  coarse.Arrive(2);
  EXPECT_EQ(coarse.n_bar(), 1u);
  EXPECT_EQ(coarse.round(), 1u);
  EXPECT_EQ(meter.broadcast_count(), 1u);
}

TEST(CoarseTrackerTest, CommunicationIsKLogN) {
  const int k = 16;
  sim::CommMeter meter(k);
  CoarseTracker coarse(k, &meter);
  const uint64_t kN = 1 << 18;
  for (uint64_t i = 0; i < kN; ++i) {
    coarse.Arrive(static_cast<int>(i % k));
  }
  // Uploads: each site reports ~log2(N/k) times; broadcasts: ~log2(N) each
  // costing k. Budget 4 k log2 N total messages.
  double budget = 4.0 * k * std::log2(static_cast<double>(kN));
  EXPECT_LT(static_cast<double>(meter.TotalMessages()), budget);
}

TEST(CoarseTrackerTest, ObserversFireInOrderWithRounds) {
  sim::CommMeter meter(2);
  CoarseTracker coarse(2, &meter);
  uint64_t last_round = 0;
  uint64_t last_nbar = 0;
  coarse.AddObserver([&](uint64_t round, uint64_t n_bar) {
    EXPECT_EQ(round, last_round + 1);
    EXPECT_GE(n_bar, 2 * last_nbar);
    last_round = round;
    last_nbar = n_bar;
  });
  for (int i = 0; i < 5000; ++i) coarse.Arrive(i % 2);
  EXPECT_EQ(last_round, coarse.round());
}

TEST(CoarseTrackerTest, SingleSiteSkewStillApproximates) {
  sim::CommMeter meter(8);
  CoarseTracker coarse(8, &meter);
  for (uint64_t i = 1; i <= 50000; ++i) {
    coarse.Arrive(3);
    ASSERT_GE(i, coarse.n_bar());
    ASSERT_LT(i, 4 * std::max<uint64_t>(1, coarse.n_bar()));
  }
}

TEST(DeterministicCountTest, OptionsValidate) {
  DeterministicCountOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_sites = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.num_sites = 4;
  o.epsilon = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.epsilon = 1.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(DeterministicCountTest, ErrorWithinEpsilonAtAllTimes) {
  DeterministicCountOptions o;
  o.num_sites = 8;
  o.epsilon = 0.05;
  DeterministicCountTracker tracker(o);
  auto w = MakeCountWorkload(8, 100000, SiteSchedule::kUniformRandom, 5);
  uint64_t n = 0;
  for (const auto& a : w) {
    tracker.Arrive(a.site);
    ++n;
    double err = std::fabs(tracker.EstimateCount() - static_cast<double>(n));
    ASSERT_LE(err, o.epsilon * static_cast<double>(n) + 1e-9)
        << "at n = " << n;
  }
}

TEST(DeterministicCountTest, OneWayOnly) {
  DeterministicCountOptions o;
  o.num_sites = 4;
  o.epsilon = 0.1;
  DeterministicCountTracker tracker(o);
  for (int i = 0; i < 10000; ++i) tracker.Arrive(i % 4);
  EXPECT_EQ(tracker.meter().downloads().messages, 0u);
  EXPECT_EQ(tracker.meter().broadcast_count(), 0u);
}

TEST(DeterministicCountTest, CommunicationScalesAsKOverEps) {
  // Messages ~ k * log_{1+eps/2}(N/k) — verify the 1/eps scaling by
  // comparing two eps values on the same workload.
  auto run = [](double eps) {
    DeterministicCountOptions o;
    o.num_sites = 8;
    o.epsilon = eps;
    DeterministicCountTracker tracker(o);
    for (int i = 0; i < 200000; ++i) tracker.Arrive(i % 8);
    return static_cast<double>(tracker.meter().TotalMessages());
  };
  double coarse = run(0.04);
  double fine = run(0.01);
  EXPECT_GT(fine, 2.5 * coarse);  // ~4x expected
  EXPECT_LT(fine, 6.0 * coarse);
}

TEST(DeterministicCountTest, SpaceIsConstant) {
  DeterministicCountOptions o;
  o.num_sites = 4;
  o.epsilon = 0.01;
  DeterministicCountTracker tracker(o);
  for (int i = 0; i < 50000; ++i) tracker.Arrive(i % 4);
  EXPECT_LE(tracker.space().MaxPeak(), 4u);
}

TEST(RandomizedCountTest, OptionsValidate) {
  RandomizedCountOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.confidence_factor = 0.5;
  EXPECT_FALSE(o.Validate().ok());
  o.confidence_factor = 4;
  o.epsilon = -0.1;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(RandomizedCountTest, ExactWhilePIsOne) {
  // While εn̄ <= c√k the tracker forwards every arrival: estimate is exact.
  RandomizedCountOptions o;
  o.num_sites = 16;
  o.epsilon = 0.1;
  o.confidence_factor = 4;
  RandomizedCountTracker tracker(o);
  // p stays 1 while n̄ <= c√k/ε = 160.
  for (int i = 0; i < 150; ++i) {
    tracker.Arrive(i % 16);
    ASSERT_DOUBLE_EQ(tracker.EstimateCount(),
                     static_cast<double>(tracker.TrueCount()));
  }
  EXPECT_DOUBLE_EQ(tracker.p(), 1.0);
}

TEST(RandomizedCountTest, UnbiasedAtFixedTime) {
  // Lemma 2.1: E[n̂] = n. Mean error over trials should concentrate at 0.
  const uint64_t kN = 30000;
  auto w = MakeCountWorkload(8, kN, SiteSchedule::kUniformRandom, 7);
  auto errors = testing_util::CollectErrors(400, [&](uint64_t seed) {
    RandomizedCountOptions o;
    o.num_sites = 8;
    o.epsilon = 0.05;
    o.seed = seed;
    RandomizedCountTracker tracker(o);
    for (const auto& a : w) tracker.Arrive(a.site);
    return tracker.EstimateCount() - static_cast<double>(kN);
  });
  // std <= eps*n/c = 375; mean of 400 trials has std ~ 19.
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 60.0);
}

TEST(RandomizedCountTest, VarianceWithinBudget) {
  // Var[n̂] <= k/p² <= (εn̄/c)² <= (εn/c)².
  const uint64_t kN = 40000;
  const double eps = 0.05;
  const double c = 4;
  auto w = MakeCountWorkload(16, kN, SiteSchedule::kRoundRobin, 9);
  auto errors = testing_util::CollectErrors(400, [&](uint64_t seed) {
    RandomizedCountOptions o;
    o.num_sites = 16;
    o.epsilon = eps;
    o.seed = seed;
    o.confidence_factor = c;
    RandomizedCountTracker tracker(o);
    for (const auto& a : w) tracker.Arrive(a.site);
    return tracker.EstimateCount() - static_cast<double>(kN);
  });
  double budget = eps * static_cast<double>(kN) / c;
  EXPECT_LE(testing_util::VarianceOf(errors), 1.3 * budget * budget);
}

TEST(RandomizedCountTest, CoverageAtLeastNinety) {
  // Theorem 2.1: error <= εn with probability >= 0.9 at any fixed time.
  const uint64_t kN = 30000;
  const double eps = 0.02;
  auto w = MakeCountWorkload(8, kN, SiteSchedule::kUniformRandom, 11);
  auto errors = testing_util::CollectErrors(300, [&](uint64_t seed) {
    RandomizedCountOptions o;
    o.num_sites = 8;
    o.epsilon = eps;
    o.seed = seed;
    RandomizedCountTracker tracker(o);
    for (const auto& a : w) tracker.Arrive(a.site);
    return tracker.EstimateCount() - static_cast<double>(kN);
  });
  EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9);
}

TEST(RandomizedCountTest, CoverageHoldsUnderSkew) {
  const uint64_t kN = 30000;
  const double eps = 0.05;
  for (auto schedule : {SiteSchedule::kSingleSite, SiteSchedule::kBursty,
                        SiteSchedule::kSkewedGeometric}) {
    auto w = MakeCountWorkload(16, kN, schedule, 13);
    auto errors = testing_util::CollectErrors(200, [&](uint64_t seed) {
      RandomizedCountOptions o;
      o.num_sites = 16;
      o.epsilon = eps;
      o.seed = seed;
      RandomizedCountTracker tracker(o);
      for (const auto& a : w) tracker.Arrive(a.site);
      return tracker.EstimateCount() - static_cast<double>(kN);
    });
    EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9)
        << "schedule " << static_cast<int>(schedule);
  }
}

TEST(RandomizedCountTest, SpaceIsConstantPerSite) {
  RandomizedCountOptions o;
  o.num_sites = 8;
  o.epsilon = 0.01;
  RandomizedCountTracker tracker(o);
  for (int i = 0; i < 100000; ++i) tracker.Arrive(i % 8);
  EXPECT_LE(tracker.space().MaxPeak(), 8u);
}

TEST(RandomizedCountTest, BeatsDeterministicCommunicationAtLargeK) {
  const int k = 64;
  const double eps = 0.01;
  const uint64_t kN = 1 << 18;
  auto w = MakeCountWorkload(k, kN, SiteSchedule::kRoundRobin, 17);

  DeterministicCountOptions det;
  det.num_sites = k;
  det.epsilon = eps;
  DeterministicCountTracker det_tracker(det);
  for (const auto& a : w) det_tracker.Arrive(a.site);

  RandomizedCountOptions rnd;
  rnd.num_sites = k;
  rnd.epsilon = eps;
  rnd.seed = 23;
  RandomizedCountTracker rnd_tracker(rnd);
  for (const auto& a : w) rnd_tracker.Arrive(a.site);

  // Theory ratio k/√k = 8; constants (c = 4) eat part of it. Require > 1.5x.
  EXPECT_GT(det_tracker.meter().TotalMessages(),
            rnd_tracker.meter().TotalMessages() * 3 / 2);
}

TEST(RandomizedCountTest, PDecreasesOverTime) {
  RandomizedCountOptions o;
  o.num_sites = 4;
  o.epsilon = 0.05;
  RandomizedCountTracker tracker(o);
  double last_p = 1.0;
  for (int i = 0; i < 200000; ++i) {
    tracker.Arrive(i % 4);
    double p = tracker.p();
    ASSERT_LE(p, last_p + 1e-12);
    last_p = p;
  }
  EXPECT_LT(last_p, 0.1);
  // 1/p stays a power of two.
  double inv_p = 1.0 / last_p;
  EXPECT_DOUBLE_EQ(std::exp2(std::round(std::log2(inv_p))), inv_p);
}

TEST(RandomizedCountTest, TwoWayCommunicationIsUsed) {
  RandomizedCountOptions o;
  o.num_sites = 8;
  o.epsilon = 0.05;
  RandomizedCountTracker tracker(o);
  for (int i = 0; i < 50000; ++i) tracker.Arrive(i % 8);
  // Theorem 2.2: the √k bound requires coordinator->site traffic.
  EXPECT_GT(tracker.meter().broadcast_count(), 0u);
  EXPECT_GT(tracker.meter().downloads().messages, 0u);
}

TEST(RandomizedCountTest, NaiveBoundaryEstimatorIsBiased) {
  // The ablation reproduces the bias the paper warns about: applying
  // n̂_i = n̄_i - 1 + 1/p to sites with no report adds ~(1/p - 1) per idle
  // site. A single-site stream leaves k-1 sites without reports, so the
  // naive estimate drifts upward by ~(k-1)(1/p - 1) while the paper's
  // two-case estimator stays centered.
  const uint64_t kN = 20000;
  const double eps = 0.05;
  const int k = 64;
  auto w = MakeCountWorkload(k, kN, SiteSchedule::kSingleSite, 31);
  double biased_mean, correct_mean;
  for (bool naive : {true, false}) {
    auto errors = testing_util::CollectErrors(300, [&](uint64_t seed) {
      RandomizedCountOptions o;
      o.num_sites = k;
      o.epsilon = eps;
      o.seed = seed;
      o.naive_boundary_estimator = naive;
      RandomizedCountTracker tracker(o);
      for (const auto& a : w) tracker.Arrive(a.site);
      return tracker.EstimateCount() - static_cast<double>(kN);
    });
    (naive ? biased_mean : correct_mean) = testing_util::MeanOf(errors);
  }
  EXPECT_GT(std::fabs(biased_mean), 10 * std::fabs(correct_mean) + 50);
}

TEST(RandomizedCountTest, ContinuousTrackingViaCheckpoints) {
  RandomizedCountOptions o;
  o.num_sites = 8;
  o.epsilon = 0.05;
  o.seed = 77;
  RandomizedCountTracker tracker(o);
  auto w = MakeCountWorkload(8, 200000, SiteSchedule::kUniformRandom, 37);
  auto checkpoints = sim::ReplayCount(&tracker, w, 1.3);
  // Most checkpoints within eps*n; allow a few Chebyshev misses.
  int misses = 0;
  int counted = 0;
  for (const auto& c : checkpoints) {
    if (c.n < 1000) continue;
    ++counted;
    if (std::fabs(c.estimate - c.truth) > 0.05 * static_cast<double>(c.n)) {
      ++misses;
    }
  }
  ASSERT_GT(counted, 5);
  EXPECT_LE(misses, counted / 5);
}

}  // namespace
}  // namespace count
}  // namespace disttrack
