// Edge-case coverage for the frequency hot path's open-addressing counter
// store (frequency/counter_table.h): epoch-based bulk clears (round
// boundaries and virtual-site splits), growth at the load-factor
// threshold, extreme keys (0 and UINT64_MAX have no sentinel role), and
// stale-slot reuse across epochs.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/common/random.h"
#include "disttrack/frequency/counter_table.h"

namespace disttrack {
namespace frequency {
namespace {

TEST(CounterTableTest, InsertFindIncrement) {
  CounterTable t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Find(42), nullptr);
  t.Insert(42, 1);
  ASSERT_NE(t.Find(42), nullptr);
  EXPECT_EQ(*t.Find(42), 1u);
  t.IncrementIfTracked(42);
  t.IncrementIfTracked(43);  // untracked: no-op, no insertion
  EXPECT_EQ(*t.Find(42), 2u);
  EXPECT_EQ(t.Find(43), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(CounterTableTest, ExtremeKeysAreOrdinary) {
  CounterTable t;
  t.Insert(0, 7);
  t.Insert(~uint64_t{0}, 9);
  ASSERT_NE(t.Find(0), nullptr);
  ASSERT_NE(t.Find(~uint64_t{0}), nullptr);
  EXPECT_EQ(*t.Find(0), 7u);
  EXPECT_EQ(*t.Find(~uint64_t{0}), 9u);
  t.IncrementIfTracked(0);
  EXPECT_EQ(*t.Find(0), 8u);
  EXPECT_EQ(t.size(), 2u);
  // Both survive a grow cycle.
  for (uint64_t j = 1; j < 400; ++j) t.Insert(j, j);
  EXPECT_EQ(*t.Find(0), 8u);
  EXPECT_EQ(*t.Find(~uint64_t{0}), 9u);
}

TEST(CounterTableTest, ClearByEpochDropsEverything) {
  CounterTable t;
  for (uint64_t j = 0; j < 100; ++j) t.Insert(j * 31, j + 1);
  EXPECT_EQ(t.size(), 100u);
  uint64_t epoch_before = t.epoch();
  size_t cap_before = t.capacity();
  t.Clear();
  EXPECT_EQ(t.epoch(), epoch_before + 1);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), cap_before);  // capacity retained
  for (uint64_t j = 0; j < 100; ++j) {
    EXPECT_EQ(t.Find(j * 31), nullptr) << "stale key resurfaced: " << j * 31;
  }
}

TEST(CounterTableTest, StaleSlotsAreReusableAfterClear) {
  // Re-inserting the same keys after a clear lands on the same slots;
  // values must restart, not resume, and repeated clear/insert cycles
  // must neither leak size nor resurrect old values.
  CounterTable t;
  for (int round = 0; round < 50; ++round) {
    for (uint64_t j = 0; j < 40; ++j) {
      EXPECT_EQ(t.Find(j), nullptr);
      t.Insert(j, 1);
    }
    for (uint64_t j = 0; j < 40; ++j) {
      ASSERT_NE(t.Find(j), nullptr);
      EXPECT_EQ(*t.Find(j), 1u) << "value leaked across epochs";
    }
    EXPECT_EQ(t.size(), 40u);
    t.Clear();
  }
}

TEST(CounterTableTest, GrowthAtHighLoadKeepsAllEntries) {
  CounterTable t;
  size_t initial_capacity = t.capacity();
  // Large enough to push capacity past 2^16, where the fingerprint bits
  // must stay below the index bits (they are taken relative to shift_).
  const uint64_t kN = 40000;
  for (uint64_t j = 0; j < kN; ++j) t.Insert(j * 0x9E3779B1ull, j);
  EXPECT_GT(t.capacity(), initial_capacity);
  EXPECT_EQ(t.size(), static_cast<size_t>(kN));
  // Load factor stays at or below 1/2 after growth.
  EXPECT_LE(2 * t.size(), t.capacity());
  for (uint64_t j = 0; j < kN; ++j) {
    ASSERT_NE(t.Find(j * 0x9E3779B1ull), nullptr) << j;
    EXPECT_EQ(*t.Find(j * 0x9E3779B1ull), j);
  }
}

TEST(CounterTableTest, GrowthRehashesOnlyTheLiveEpoch) {
  CounterTable t;
  // Populate and clear: the stale slots still physically occupy the
  // array. A grow after the clear must not resurrect them.
  for (uint64_t j = 0; j < 200; ++j) t.Insert(j, j + 1);
  t.Clear();
  for (uint64_t j = 1000; j < 1600; ++j) t.Insert(j, j);  // forces growth
  for (uint64_t j = 0; j < 200; ++j) {
    EXPECT_EQ(t.Find(j), nullptr) << "pre-clear key " << j << " resurfaced";
  }
  for (uint64_t j = 1000; j < 1600; ++j) {
    ASSERT_NE(t.Find(j), nullptr);
    EXPECT_EQ(*t.Find(j), j);
  }
  EXPECT_EQ(t.size(), 600u);
}

TEST(CounterTableTest, MatchesUnorderedMapUnderRandomWorkload) {
  // Differential test against std::unordered_map over mixed
  // insert/increment/clear traffic, including adversarially colliding
  // keys (sequential ids — the Zipf workload's shape).
  Rng rng(12345);
  CounterTable t;
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int op = 0; op < 200000; ++op) {
    uint64_t key = rng.UniformU64(512);  // dense key space: many repeats
    if (op % 7919 == 7918) {
      t.Clear();
      ref.clear();
      continue;
    }
    auto it = ref.find(key);
    uint64_t* slot = t.Find(key);
    ASSERT_EQ(slot != nullptr, it != ref.end()) << "presence mismatch";
    if (it != ref.end()) {
      ASSERT_EQ(*slot, it->second);
      ++it->second;
      t.IncrementIfTracked(key);
    } else if (rng.Bernoulli(0.25)) {
      ref.emplace(key, 1);
      t.Insert(key, 1);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [key, value] : ref) {
    ASSERT_NE(t.Find(key), nullptr);
    EXPECT_EQ(*t.Find(key), value);
  }
}

}  // namespace
}  // namespace frequency
}  // namespace disttrack
