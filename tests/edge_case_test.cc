// Edge-case and stress tests for the protocol layer: single-element and
// single-site streams, k = 1 degeneration to the streaming model (§1.1),
// extreme bursts that force multiple p-halvings inside one broadcast, and
// round-boundary behavior.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "disttrack/core/tracking.h"
#include "disttrack/count/coarse_tracker.h"
#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "test_util.h"

namespace disttrack {
namespace {

using core::Algorithm;
using core::TrackerOptions;

TEST(EdgeCaseTest, EmptyTrackersAnswerZero) {
  TrackerOptions o;
  o.num_sites = 4;
  o.epsilon = 0.1;
  std::unique_ptr<sim::CountTrackerInterface> count;
  std::unique_ptr<sim::FrequencyTrackerInterface> freq;
  std::unique_ptr<sim::RankTrackerInterface> rank;
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized,
                         Algorithm::kSampling}) {
    ASSERT_TRUE(core::MakeCountTracker(algorithm, o, &count).ok());
    ASSERT_TRUE(core::MakeFrequencyTracker(algorithm, o, &freq).ok());
    ASSERT_TRUE(core::MakeRankTracker(algorithm, o, &rank).ok());
    EXPECT_DOUBLE_EQ(count->EstimateCount(), 0.0);
    EXPECT_DOUBLE_EQ(freq->EstimateFrequency(42), 0.0);
    EXPECT_DOUBLE_EQ(rank->EstimateRank(42), 0.0);
    EXPECT_EQ(count->meter().TotalMessages(), 0u);
  }
}

TEST(EdgeCaseTest, SingleElementIsExactEverywhere) {
  TrackerOptions o;
  o.num_sites = 4;
  o.epsilon = 0.1;
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized,
                         Algorithm::kSampling}) {
    std::unique_ptr<sim::CountTrackerInterface> count;
    ASSERT_TRUE(core::MakeCountTracker(algorithm, o, &count).ok());
    count->Arrive(2);
    EXPECT_DOUBLE_EQ(count->EstimateCount(), 1.0)
        << core::AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, SingleSiteDegeneratesToStreamingModel) {
  // k = 1: the coordinator is effectively the site (§1.1). Everything must
  // still work, with deterministic exactness for the trivial tracker and
  // within-epsilon answers for the randomized one.
  TrackerOptions o;
  o.num_sites = 1;
  o.epsilon = 0.05;
  o.seed = 3;
  std::unique_ptr<sim::CountTrackerInterface> det, rnd;
  ASSERT_TRUE(core::MakeCountTracker(Algorithm::kDeterministic, o, &det).ok());
  ASSERT_TRUE(core::MakeCountTracker(Algorithm::kRandomized, o, &rnd).ok());
  for (int i = 0; i < 50000; ++i) {
    det->Arrive(0);
    rnd->Arrive(0);
  }
  EXPECT_NEAR(det->EstimateCount(), 50000.0, 0.05 * 50000);
  EXPECT_NEAR(rnd->EstimateCount(), 50000.0, 0.05 * 50000);
}

TEST(EdgeCaseTest, LargeEpsilonSmallK) {
  // eps close to its upper range with tiny k: degenerate tree/block sizes
  // in the rank tracker (L = 1, h = 0) must still satisfy the contract.
  TrackerOptions o;
  o.num_sites = 2;
  o.epsilon = 0.5;
  o.seed = 7;
  std::unique_ptr<sim::RankTrackerInterface> rank;
  ASSERT_TRUE(core::MakeRankTracker(Algorithm::kRandomized, o, &rank).ok());
  for (uint64_t i = 0; i < 20000; ++i) rank->Arrive(static_cast<int>(i % 2), i % 100);
  EXPECT_NEAR(rank->EstimateRank(50), 10000.0, 0.5 * 20000);
}

TEST(CoarseTrackerBurstTest, HugeBurstTriggersMultipleHalvings) {
  // A burst that multiplies n by ~16 within one site forces the randomized
  // count tracker through several p-halvings; the estimator must remain
  // calibrated afterwards (the §2.1 re-randomization ritual, iterated).
  const int k = 16;
  auto errors = testing_util::CollectErrors(200, [&](uint64_t seed) {
    count::RandomizedCountOptions o;
    o.num_sites = k;
    o.epsilon = 0.05;
    o.seed = seed;
    count::RandomizedCountTracker tracker(o);
    // Warm up uniformly, then burst 16x the current count into one site.
    for (int i = 0; i < 4000; ++i) tracker.Arrive(i % k);
    for (int i = 0; i < 64000; ++i) tracker.Arrive(3);
    return tracker.EstimateCount() - 68000.0;
  });
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 300.0);
  EXPECT_GE(CoverageWithin(errors, 0.05 * 68000), 0.9);
}

TEST(CoarseTrackerBurstTest, NBarInvariantSurvivesBurst) {
  sim::CommMeter meter(8);
  count::CoarseTracker coarse(8, &meter);
  uint64_t n = 0;
  for (int i = 0; i < 100; ++i) {
    coarse.Arrive(i % 8);
    ++n;
  }
  for (int i = 0; i < 100000; ++i) {
    coarse.Arrive(5);
    ++n;
    ASSERT_GE(n, coarse.n_bar());
    ASSERT_LT(n, 4 * std::max<uint64_t>(1, coarse.n_bar()));
  }
}

TEST(RandomizedFrequencyBurstTest, AccurateAfterSingleSiteBurst) {
  const int k = 8;
  auto errors = testing_util::CollectErrors(150, [&](uint64_t seed) {
    frequency::RandomizedFrequencyOptions o;
    o.num_sites = k;
    o.epsilon = 0.05;
    o.seed = seed;
    frequency::RandomizedFrequencyTracker tracker(o);
    for (int i = 0; i < 4000; ++i) tracker.Arrive(i % k, 1);
    for (int i = 0; i < 36000; ++i) tracker.Arrive(2, i % 2);  // burst
    // Item 1: 4000 + 18000 = 22000 copies.
    return tracker.EstimateFrequency(1) - 22000.0;
  });
  EXPECT_GE(CoverageWithin(errors, 0.05 * 40000), 0.9);
}

TEST(RandomizedRankBurstTest, AccurateAfterSortedBurst) {
  const int k = 8;
  auto errors = testing_util::CollectErrors(150, [&](uint64_t seed) {
    rank::RandomizedRankOptions o;
    o.num_sites = k;
    o.epsilon = 0.05;
    o.seed = seed;
    rank::RandomizedRankTracker tracker(o);
    for (uint64_t i = 0; i < 40000; ++i) {
      tracker.Arrive(2, i);  // sorted burst into one site
    }
    return tracker.EstimateRank(20000) - 20000.0;
  });
  EXPECT_GE(CoverageWithin(errors, 0.05 * 40000), 0.9);
}

TEST(RoundBoundaryTest, QueriesConsistentAcrossManyRounds) {
  // Drive enough growth for ~17 rounds and verify estimates immediately
  // before and after each broadcast (round boundary) stay within bounds.
  count::RandomizedCountOptions o;
  o.num_sites = 8;
  o.epsilon = 0.05;
  o.seed = 17;
  count::RandomizedCountTracker tracker(o);
  uint64_t n = 0;
  uint64_t last_round = 0;
  int boundary_checks = 0;
  for (int i = 0; i < 200000; ++i) {
    tracker.Arrive(i % 8);
    ++n;
    if (tracker.rounds() != last_round) {
      last_round = tracker.rounds();
      if (n > 2000) {
        ++boundary_checks;
        ASSERT_NEAR(tracker.EstimateCount(), static_cast<double>(n),
                    0.1 * static_cast<double>(n))
            << "right after round " << last_round;
      }
    }
  }
  EXPECT_GT(boundary_checks, 4);
}

TEST(AblationTest, VirtualSplitDoesNotHurtAccuracy) {
  // With and without virtual-site splitting, estimates stay within bounds
  // — the split is a space optimization, not an accuracy trade.
  const int k = 8;
  for (bool split : {true, false}) {
    auto errors = testing_util::CollectErrors(120, [&](uint64_t seed) {
      frequency::RandomizedFrequencyOptions o;
      o.num_sites = k;
      o.epsilon = 0.05;
      o.seed = seed;
      o.virtual_site_split = split;
      frequency::RandomizedFrequencyTracker tracker(o);
      for (int i = 0; i < 30000; ++i) tracker.Arrive(0, i % 3);
      return tracker.EstimateFrequency(0) - 10000.0;
    });
    EXPECT_GE(CoverageWithin(errors, 0.05 * 30000), 0.9)
        << "split " << split;
  }
}

}  // namespace
}  // namespace disttrack
