// Differential fault-tolerance tests (robustness PR acceptance): a run
// under any seeded fault schedule — drops, duplicates, reorders, delays,
// site crashes mid-epoch, coordinator restarts — must end bit-identical
// to the fault-free run for count, frequency, and rank, with the wire
// bytes matching CommMeter's frame accounting exactly.
//
// The RobustReplay* engine already self-checks the strongest invariants
// every arrival (replica estimate == tracker estimate at checkpoints,
// per-arrival paper word charges, journal content equality, byte
// conservation) and reports any violation through RobustReport::ok.
// These tests drive the sweep, compare fault runs against the fault-free
// baseline checkpoint-by-checkpoint, and cross-check the robust engine
// against the serial and multi-threaded reference drivers.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/sim/parallel_cluster.h"
#include "disttrack/sim/robust_cluster.h"
#include "disttrack/stream/workload.h"

namespace disttrack {
namespace sim {
namespace {

constexpr int kSweepSeeds = 50;

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct SweepStats {
  uint64_t recoveries = 0;
  uint64_t restarts = 0;
  uint64_t deduped = 0;
  uint64_t retransmissions = 0;
  int seeds_with_restart = 0;
};

/// Runs `run(robust)` for the fault-free plan and for `kSweepSeeds` seeded
/// storms, asserting every fault run is bit-identical to the baseline and
/// byte-conserving; `*stats` collects what the storms exercised in
/// aggregate. (Out-parameter: ASSERT_* needs a void function.)
void RunSweep(const char* tag, uint64_t n, int k, uint64_t seed_base,
              const std::function<RobustReport(const RobustOptions&)>& run,
              SweepStats* stats) {
  RobustOptions clean;
  RobustReport base = run(clean);
  ASSERT_TRUE(base.ok) << tag << " fault-free: " << base.error;
  EXPECT_EQ(base.retransmit_bytes, 0u) << tag;  // nothing to recover from
  EXPECT_EQ(base.retransmissions, 0u) << tag;
  EXPECT_EQ(base.frames_deduped, 0u) << tag;
  EXPECT_EQ(base.link_bytes_offered, base.wire_bytes + base.overhead_bytes)
      << tag;

  for (int i = 0; i < kSweepSeeds; ++i) {
    uint64_t seed = seed_base + static_cast<uint64_t>(i);
    RobustOptions faulty;
    faulty.plan = FaultPlan::FromSeed(seed, n, k);
    RobustReport report = run(faulty);
    ASSERT_TRUE(report.ok)
        << tag << " storm seed " << seed << ": " << report.error;

    // Bit-identical convergence at every checkpoint, for both the
    // authoritative tracker and the frame-rebuilt replica.
    ASSERT_EQ(report.checkpoints.size(), base.checkpoints.size())
        << tag << " seed " << seed;
    for (size_t c = 0; c < base.checkpoints.size(); ++c) {
      EXPECT_EQ(report.checkpoints[c].n, base.checkpoints[c].n);
      ASSERT_TRUE(SameBits(report.checkpoints[c].estimate,
                           base.checkpoints[c].estimate))
          << tag << " seed " << seed << " checkpoint n="
          << base.checkpoints[c].n << ": " << report.checkpoints[c].estimate
          << " != " << base.checkpoints[c].estimate;
      ASSERT_TRUE(SameBits(report.checkpoints[c].replica_estimate,
                           report.checkpoints[c].estimate))
          << tag << " seed " << seed;
      EXPECT_EQ(report.checkpoints[c].truth, base.checkpoints[c].truth);
    }

    // The paper-model traffic is computed above the transport: faults
    // must not change it at all.
    EXPECT_EQ(report.paper_words, base.paper_words) << tag << " seed " << seed;
    EXPECT_EQ(report.paper_messages, base.paper_messages)
        << tag << " seed " << seed;

    // First transmissions are the same frames in every run; all fault
    // and recovery traffic lands in the other two channels, and every
    // link byte is accounted for.
    EXPECT_EQ(report.wire_bytes, base.wire_bytes) << tag << " seed " << seed;
    EXPECT_EQ(report.link_bytes_offered,
              report.wire_bytes + report.retransmit_bytes +
                  report.overhead_bytes)
        << tag << " seed " << seed;

    EXPECT_GE(report.site_recoveries, 1u) << tag << " seed " << seed;
    stats->recoveries += report.site_recoveries;
    stats->restarts += report.coordinator_restarts;
    stats->deduped += report.frames_deduped;
    stats->retransmissions += report.retransmissions;
    if (report.coordinator_restarts > 0) ++stats->seeds_with_restart;
  }
}

void ExpectStormCoverage(const char* tag, const SweepStats& stats) {
  // Every storm crashes at least one site; about half restart the
  // coordinator; the link fault rates make duplicates and drops (hence
  // retransmissions) near-certain over 50 storms.
  EXPECT_GE(stats.recoveries, static_cast<uint64_t>(kSweepSeeds)) << tag;
  EXPECT_GE(stats.seeds_with_restart, 10) << tag;
  EXPECT_GT(stats.deduped, 0u) << tag;
  EXPECT_GT(stats.retransmissions, 0u) << tag;
}

TEST(FaultToleranceTest, CountSweepConvergesBitIdentical) {
  const int k = 4;
  const uint64_t n = 3000;
  count::RandomizedCountOptions opt;
  opt.num_sites = k;
  opt.epsilon = 0.1;
  opt.seed = 42;
  Workload w =
      stream::MakeCountWorkload(k, n, stream::SiteSchedule::kUniformRandom, 7);

  SweepStats stats;
  RunSweep(
      "count", n, k, 100,
      [&](const RobustOptions& r) { return RobustReplayCount(opt, w, r); },
      &stats);
  ExpectStormCoverage("count", stats);
}

TEST(FaultToleranceTest, FrequencySweepConvergesBitIdentical) {
  const int k = 4;
  const uint64_t n = 2500;
  frequency::RandomizedFrequencyOptions opt;
  opt.num_sites = k;
  opt.epsilon = 0.15;
  opt.seed = 5;
  Workload w = stream::MakeFrequencyWorkload(
      k, n, stream::SiteSchedule::kUniformRandom, 64, 1.1, 11);
  const uint64_t query = 2;

  SweepStats stats;
  RunSweep(
      "frequency", n, k, 200,
      [&](const RobustOptions& r) {
        return RobustReplayFrequency(opt, w, query, r);
      },
      &stats);
  ExpectStormCoverage("frequency", stats);
}

TEST(FaultToleranceTest, RankSweepConvergesBitIdentical) {
  const int k = 4;
  const uint64_t n = 2500;
  rank::RandomizedRankOptions opt;
  opt.num_sites = k;
  opt.epsilon = 0.15;
  opt.seed = 9;
  Workload w = stream::MakeRankWorkload(
      k, n, stream::SiteSchedule::kUniformRandom,
      stream::ValueOrder::kUniformRandom, 20, 13);
  const uint64_t query = 1ull << 19;

  SweepStats stats;
  RunSweep(
      "rank", n, k, 300,
      [&](const RobustOptions& r) {
        return RobustReplayRank(opt, w, query, r);
      },
      &stats);
  ExpectStormCoverage("rank", stats);
}

// The robust engine's scalar delivery must reproduce the serial reference
// drivers exactly (same trackers, same checkpoint schedule), so the
// fault-free robust run is a valid baseline for the sweep above.
TEST(FaultToleranceTest, FaultFreeRobustMatchesSerialReplay) {
  const int k = 5;
  const uint64_t n = 2000;
  {
    count::RandomizedCountOptions opt;
    opt.num_sites = k;
    opt.epsilon = 0.1;
    opt.seed = 3;
    Workload w = stream::MakeCountWorkload(
        k, n, stream::SiteSchedule::kRoundRobin, 19);
    count::RandomizedCountTracker serial(opt);
    std::vector<Checkpoint> ref = ReplayCount(&serial, w);
    RobustReport robust = RobustReplayCount(opt, w, RobustOptions());
    ASSERT_TRUE(robust.ok) << robust.error;
    ASSERT_EQ(robust.checkpoints.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(robust.checkpoints[i].n, ref[i].n);
      EXPECT_TRUE(SameBits(robust.checkpoints[i].estimate, ref[i].estimate));
      EXPECT_EQ(robust.checkpoints[i].truth, ref[i].truth);
    }
  }
  {
    frequency::RandomizedFrequencyOptions opt;
    opt.num_sites = k;
    opt.epsilon = 0.2;
    opt.seed = 23;
    Workload w = stream::MakeFrequencyWorkload(
        k, n, stream::SiteSchedule::kSkewedGeometric, 64, 1.2, 29);
    frequency::RandomizedFrequencyTracker serial(opt);
    std::vector<Checkpoint> ref = ReplayFrequency(&serial, w, 1);
    RobustReport robust = RobustReplayFrequency(opt, w, 1, RobustOptions());
    ASSERT_TRUE(robust.ok) << robust.error;
    ASSERT_EQ(robust.checkpoints.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(SameBits(robust.checkpoints[i].estimate, ref[i].estimate));
    }
  }
  {
    rank::RandomizedRankOptions opt;
    opt.num_sites = k;
    opt.epsilon = 0.2;
    opt.seed = 31;
    // The robust engine delivers element-at-a-time; the reference batch
    // driver is bit-identical to that only on the per-element compaction
    // feed (batched compaction is equivalent in distribution, not bits —
    // see batch_equivalence_test).
    opt.use_batch_compaction = false;
    Workload w = stream::MakeRankWorkload(
        k, n, stream::SiteSchedule::kUniformRandom,
        stream::ValueOrder::kClustered, 22, 37);
    rank::RandomizedRankTracker serial(opt);
    std::vector<Checkpoint> ref = ReplayRank(&serial, w, 1ull << 21);
    RobustReport robust =
        RobustReplayRank(opt, w, 1ull << 21, RobustOptions());
    ASSERT_TRUE(robust.ok) << robust.error;
    ASSERT_EQ(robust.checkpoints.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(SameBits(robust.checkpoints[i].estimate, ref[i].estimate));
    }
  }
}

// Cross-check against the multi-threaded reference: a robust run under a
// crash/restart-heavy storm must land on the same bits as ParallelCluster
// replaying the same workload fault-free on a real thread pool. (This is
// the test the TSan CI leg runs to sanity-check the pool under the
// fault-tolerance workloads.)
TEST(FaultToleranceTest, CrashRestartRunMatchesParallelCluster) {
  const int k = 6;
  const uint64_t n = 4000;
  ParallelCluster pool(4);

  RobustOptions storm;
  storm.plan.seed = 424242;
  storm.plan.drop_rate = 0.25;
  storm.plan.duplicate_rate = 0.2;
  storm.plan.reorder_rate = 0.3;
  storm.plan.max_delay_ticks = 3;
  storm.plan.snapshot_every = 16;
  // Crash every site at least once, mid-stream; restart the coordinator
  // twice.
  for (int s = 0; s < k; ++s) {
    storm.plan.site_crashes.push_back(
        {n / 4 + static_cast<uint64_t>(s) * (n / (2 * k)), s});
  }
  storm.plan.coordinator_restarts = {n / 3, (2 * n) / 3};

  {
    count::RandomizedCountOptions opt;
    opt.num_sites = k;
    opt.epsilon = 0.1;
    opt.seed = 71;
    Workload w = stream::MakeCountWorkload(
        k, n, stream::SiteSchedule::kUniformRandom, 73);
    count::RandomizedCountTracker tracker(opt);
    std::vector<Checkpoint> ref = pool.ReplayCount(&tracker, w);
    RobustReport robust = RobustReplayCount(opt, w, storm);
    ASSERT_TRUE(robust.ok) << robust.error;
    EXPECT_EQ(robust.site_recoveries, static_cast<uint64_t>(k));
    EXPECT_EQ(robust.coordinator_restarts, 2u);
    ASSERT_EQ(robust.checkpoints.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_TRUE(SameBits(robust.checkpoints[i].estimate, ref[i].estimate))
          << "count checkpoint " << i;
    }
  }
  {
    rank::RandomizedRankOptions opt;
    opt.num_sites = k;
    opt.epsilon = 0.2;
    opt.seed = 79;
    opt.use_batch_compaction = false;  // per-element feed: exact path
    Workload w = stream::MakeRankWorkload(
        k, n, stream::SiteSchedule::kUniformRandom,
        stream::ValueOrder::kUniformRandom, 24, 83);
    rank::RandomizedRankTracker tracker(opt);
    std::vector<Checkpoint> ref = pool.ReplayRank(&tracker, w, 1ull << 23);
    RobustReport robust = RobustReplayRank(opt, w, 1ull << 23, storm);
    ASSERT_TRUE(robust.ok) << robust.error;
    EXPECT_EQ(robust.site_recoveries, static_cast<uint64_t>(k));
    ASSERT_EQ(robust.checkpoints.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_TRUE(SameBits(robust.checkpoints[i].estimate, ref[i].estimate))
          << "rank checkpoint " << i;
    }
  }
}

// Degenerate schedules the storm generator never draws.
TEST(FaultToleranceTest, ExtremeSchedulesStillConverge) {
  const int k = 3;
  const uint64_t n = 800;
  count::RandomizedCountOptions opt;
  opt.num_sites = k;
  opt.epsilon = 0.1;
  opt.seed = 2;
  Workload w = stream::MakeCountWorkload(
      k, n, stream::SiteSchedule::kBursty, 3);
  RobustReport base = RobustReplayCount(opt, w, RobustOptions());
  ASSERT_TRUE(base.ok);

  // Near-total loss: every frame retransmitted many times.
  RobustOptions lossy;
  lossy.plan.seed = 1;
  lossy.plan.drop_rate = 0.9;
  RobustReport r = RobustReplayCount(opt, w, lossy);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.retransmissions, 0u);
  ASSERT_EQ(r.checkpoints.size(), base.checkpoints.size());
  for (size_t i = 0; i < base.checkpoints.size(); ++i) {
    EXPECT_TRUE(SameBits(r.checkpoints[i].estimate,
                         base.checkpoints[i].estimate));
  }

  // Crash the same site repeatedly, including back-to-back.
  RobustOptions crashy;
  crashy.plan.seed = 2;
  crashy.plan.duplicate_rate = 0.5;
  crashy.plan.snapshot_every = 4;
  crashy.plan.site_crashes = {{100, 0}, {100, 0}, {101, 0}, {400, 0}};
  r = RobustReplayCount(opt, w, crashy);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.site_recoveries, 4u);
  for (size_t i = 0; i < base.checkpoints.size(); ++i) {
    EXPECT_TRUE(SameBits(r.checkpoints[i].estimate,
                         base.checkpoints[i].estimate));
  }

  // Restart the coordinator every few hundred arrivals.
  RobustOptions restarty;
  restarty.plan.seed = 3;
  restarty.plan.reorder_rate = 0.6;
  restarty.plan.max_delay_ticks = 5;
  restarty.plan.coordinator_restarts = {100, 200, 300, 400, 500, 600, 700};
  r = RobustReplayCount(opt, w, restarty);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.coordinator_restarts, 7u);
  for (size_t i = 0; i < base.checkpoints.size(); ++i) {
    EXPECT_TRUE(SameBits(r.checkpoints[i].estimate,
                         base.checkpoints[i].estimate));
  }
}

}  // namespace
}  // namespace sim
}  // namespace disttrack
