// Tests for the frequency-summary substrate: Misra–Gries [20], SpaceSaving
// [19], and sticky sampling [18], including their formal error guarantees.

#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/common/random.h"
#include "disttrack/stream/zipf.h"
#include "disttrack/summaries/misra_gries.h"
#include "disttrack/summaries/space_saving.h"
#include "disttrack/summaries/sticky_sampling.h"
#include "test_util.h"

namespace disttrack {
namespace summaries {
namespace {

TEST(MisraGriesTest, ExactWhenUnderCapacity) {
  MisraGries mg(10);
  for (int i = 0; i < 5; ++i) {
    mg.Insert(7);
    mg.Insert(9);
  }
  EXPECT_EQ(mg.Estimate(7), 5u);
  EXPECT_EQ(mg.Estimate(9), 5u);
  EXPECT_EQ(mg.Estimate(1), 0u);
  EXPECT_EQ(mg.UndercountBound(), 0u);
}

TEST(MisraGriesTest, NeverOverestimates) {
  MisraGries mg(4);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    uint64_t item = rng.UniformU64(40);
    mg.Insert(item);
    ++truth[item];
  }
  for (const auto& [item, f] : truth) {
    EXPECT_LE(mg.Estimate(item), f);
  }
}

TEST(MisraGriesTest, UndercountWithinGuarantee) {
  const size_t kCapacity = 9;  // error <= n / (capacity + 1) = n / 10
  MisraGries mg(kCapacity);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(19);
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    uint64_t item = rng.UniformU64(100);
    mg.Insert(item);
    ++truth[item];
  }
  uint64_t bound = kN / (kCapacity + 1);
  for (const auto& [item, f] : truth) {
    EXPECT_GE(mg.Estimate(item) + bound, f) << "item " << item;
  }
  EXPECT_LE(mg.UndercountBound(), bound);
}

TEST(MisraGriesTest, HeavyHitterSurvives) {
  MisraGries mg(10);
  stream::ZipfGenerator zipf(1000, 1.3, 23);
  uint64_t f0 = 0;
  for (int i = 0; i < 50000; ++i) {
    uint64_t item = zipf.Next();
    mg.Insert(item);
    if (item == 0) ++f0;
  }
  // Item 0 carries >> n/11 mass under Zipf(1.3): it must be tracked.
  EXPECT_GT(mg.Estimate(0), 0u);
  EXPECT_LE(mg.Estimate(0), f0);
  EXPECT_GE(mg.Estimate(0) + mg.n() / 11, f0);
}

TEST(MisraGriesTest, CapacityIsRespected) {
  MisraGries mg(5);
  for (uint64_t i = 0; i < 1000; ++i) mg.Insert(i);
  EXPECT_LE(mg.NumCounters(), 5u);
  EXPECT_LE(mg.SpaceWords(), 2 * 5 + 2u);
}

TEST(MisraGriesTest, ItemsEnumeratesCounters) {
  MisraGries mg(4);
  mg.Insert(1);
  mg.Insert(1);
  mg.Insert(2);
  auto items = mg.Items();
  EXPECT_EQ(items.size(), 2u);
}

TEST(MisraGriesTest, ClearResets) {
  MisraGries mg(4);
  mg.Insert(1);
  mg.Clear();
  EXPECT_EQ(mg.n(), 0u);
  EXPECT_EQ(mg.Estimate(1), 0u);
  EXPECT_EQ(mg.NumCounters(), 0u);
}

TEST(MisraGriesTest, AllDistinctStreamDecrements) {
  MisraGries mg(3);
  for (uint64_t i = 0; i < 12; ++i) mg.Insert(i);
  // After many distinct inserts over capacity 3, counters churn but the
  // guarantee f - n/4 <= est holds trivially (all f = 1, n/4 = 3).
  EXPECT_LE(mg.NumCounters(), 3u);
  EXPECT_GT(mg.UndercountBound(), 0u);
}

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving ss(10);
  for (int i = 0; i < 7; ++i) ss.Insert(3);
  ss.Insert(4);
  EXPECT_EQ(ss.Estimate(3), 7u);
  EXPECT_EQ(ss.Estimate(4), 1u);
  EXPECT_EQ(ss.OvercountBound(3), 0u);
}

TEST(SpaceSavingTest, NeverUnderestimates) {
  SpaceSaving ss(8);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    uint64_t item = rng.UniformU64(50);
    ss.Insert(item);
    ++truth[item];
  }
  for (const auto& [item, f] : truth) {
    EXPECT_GE(ss.Estimate(item) + 0u, f);
  }
}

TEST(SpaceSavingTest, OvercountWithinGuarantee) {
  const size_t kCapacity = 10;  // error <= n / capacity
  SpaceSaving ss(kCapacity);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(31);
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    uint64_t item = rng.UniformU64(64);
    ss.Insert(item);
    ++truth[item];
  }
  for (const auto& [item, f] : truth) {
    EXPECT_LE(ss.Estimate(item), f + kN / kCapacity);
  }
}

TEST(SpaceSavingTest, CapacityRespected) {
  SpaceSaving ss(6);
  for (uint64_t i = 0; i < 500; ++i) ss.Insert(i % 37);
  EXPECT_LE(ss.NumCounters(), 6u);
}

TEST(SpaceSavingTest, MonitorsTrueHeavyHitter) {
  SpaceSaving ss(10);
  stream::ZipfGenerator zipf(1000, 1.3, 37);
  for (int i = 0; i < 30000; ++i) ss.Insert(zipf.Next());
  EXPECT_TRUE(ss.IsMonitored(0));
}

TEST(SpaceSavingTest, ClearResets) {
  SpaceSaving ss(4);
  ss.Insert(1);
  ss.Clear();
  EXPECT_EQ(ss.n(), 0u);
  EXPECT_EQ(ss.NumCounters(), 0u);
  EXPECT_EQ(ss.Estimate(1), 0u);
}

TEST(StickySamplingTest, PEqualsOneCountsExactly) {
  StickySampling sticky(1.0, 7);
  for (int i = 0; i < 25; ++i) sticky.Insert(5);
  EXPECT_EQ(sticky.Count(5), 25u);
  EXPECT_DOUBLE_EQ(sticky.UnbiasedEstimate(5), 25.0);
}

TEST(StickySamplingTest, CreationIsReported) {
  StickySampling sticky(0.5, 11);
  bool created = false;
  for (int i = 0; i < 100 && !created; ++i) {
    auto r = sticky.Insert(42);
    if (r.created) {
      created = true;
      EXPECT_TRUE(r.tracked);
      EXPECT_EQ(r.count, 1u);
    }
  }
  EXPECT_TRUE(created);
}

TEST(StickySamplingTest, UnbiasedEstimateOverTrials) {
  // Lemma 2.1 applied to a single counter: E[count - 1 + 1/p] = f when a
  // counter exists, 0 contributes otherwise; overall E[estimate] = f.
  const double p = 0.05;
  const uint64_t f = 200;
  auto errors = testing_util::CollectErrors(3000, [&](uint64_t seed) {
    StickySampling sticky(p, seed);
    for (uint64_t i = 0; i < f; ++i) sticky.Insert(1);
    return sticky.UnbiasedEstimate(1) - static_cast<double>(f);
  });
  // Std-dev of the mean ~ (1/p)/sqrt(trials) ~ 0.37.
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 1.5);
}

TEST(StickySamplingTest, VarianceBounded) {
  const double p = 0.1;
  const uint64_t f = 500;
  auto errors = testing_util::CollectErrors(2000, [&](uint64_t seed) {
    StickySampling sticky(p, seed);
    for (uint64_t i = 0; i < f; ++i) sticky.Insert(9);
    return sticky.UnbiasedEstimate(9) - static_cast<double>(f);
  });
  // Lemma 2.1: Var <= 1/p² = 100.
  EXPECT_LE(testing_util::VarianceOf(errors), 130.0);
}

TEST(StickySamplingTest, ExpectedSpaceIsPN) {
  const double p = 0.01;
  StickySampling sticky(p, 13);
  for (uint64_t i = 0; i < 50000; ++i) sticky.Insert(i);  // all distinct
  // E[#counters] = p * n = 500.
  EXPECT_NEAR(static_cast<double>(sticky.NumCounters()), 500.0, 120.0);
}

TEST(StickySamplingTest, TrackedItemsCountDeterministically) {
  StickySampling sticky(0.3, 17);
  // Force-track by inserting until created, then verify exact counting.
  uint64_t before = 0;
  while (!sticky.IsTracked(77)) {
    sticky.Insert(77);
    ++before;
  }
  for (int i = 0; i < 50; ++i) sticky.Insert(77);
  EXPECT_EQ(sticky.Count(77), 1u + 50u);
  EXPECT_GE(before, 1u);
}

TEST(StickySamplingTest, ClearResets) {
  StickySampling sticky(1.0, 19);
  sticky.Insert(1);
  sticky.Clear();
  EXPECT_EQ(sticky.n(), 0u);
  EXPECT_FALSE(sticky.IsTracked(1));
}

}  // namespace
}  // namespace summaries
}  // namespace disttrack
