// Tests for disttrack/frequency: the deterministic tracker [29]
// (deterministic ±εn guarantee, O(1/ε) space, Θ(k/ε logN) messages) and the
// randomized tracker of §3.1 (Lemma 3.1 unbiasedness/variance, Theorem 3.1
// coverage and O(1/(ε√k)) space, the estimator-(2) ablation, and virtual-
// site splitting).

#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "disttrack/frequency/deterministic_frequency.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace frequency {
namespace {

using stream::MakeFrequencyWorkload;
using stream::MakePlantedFrequencyWorkload;
using stream::SiteSchedule;

std::unordered_map<uint64_t, uint64_t> TrueFrequencies(
    const sim::Workload& w) {
  std::unordered_map<uint64_t, uint64_t> f;
  for (const auto& a : w) ++f[a.key];
  return f;
}

TEST(DeterministicFrequencyTest, OptionsValidate) {
  DeterministicFrequencyOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.epsilon = 2;
  EXPECT_FALSE(o.Validate().ok());
  o = DeterministicFrequencyOptions{};
  o.num_sites = -1;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(DeterministicFrequencyTest, AllItemsWithinEpsilonZipf) {
  DeterministicFrequencyOptions o;
  o.num_sites = 8;
  o.epsilon = 0.02;
  DeterministicFrequencyTracker tracker(o);
  auto w = MakeFrequencyWorkload(8, 100000, SiteSchedule::kUniformRandom,
                                 5000, 1.2, 3);
  for (const auto& a : w) tracker.Arrive(a.site, a.key);
  double bound = o.epsilon * static_cast<double>(w.size());
  for (const auto& [item, f] : TrueFrequencies(w)) {
    double err = std::fabs(tracker.EstimateFrequency(item) -
                           static_cast<double>(f));
    ASSERT_LE(err, bound + 1e-9) << "item " << item;
  }
}

TEST(DeterministicFrequencyTest, GuaranteeHoldsMidStream) {
  DeterministicFrequencyOptions o;
  o.num_sites = 4;
  o.epsilon = 0.05;
  DeterministicFrequencyTracker tracker(o);
  auto w = MakeFrequencyWorkload(4, 60000, SiteSchedule::kRoundRobin, 100,
                                 1.0, 7);
  std::unordered_map<uint64_t, uint64_t> truth;
  uint64_t n = 0;
  for (const auto& a : w) {
    tracker.Arrive(a.site, a.key);
    ++truth[a.key];
    ++n;
    if (n % 9973 == 0) {
      for (uint64_t probe : {0ull, 1ull, 17ull}) {
        double err = std::fabs(tracker.EstimateFrequency(probe) -
                               static_cast<double>(truth[probe]));
        ASSERT_LE(err, o.epsilon * static_cast<double>(n) + 1e-9)
            << "probe " << probe << " at n " << n;
      }
    }
  }
}

TEST(DeterministicFrequencyTest, GuaranteeHoldsUnderSkewedSites) {
  DeterministicFrequencyOptions o;
  o.num_sites = 16;
  o.epsilon = 0.05;
  DeterministicFrequencyTracker tracker(o);
  auto w = MakeFrequencyWorkload(16, 50000, SiteSchedule::kSingleSite, 200,
                                 1.1, 11);
  for (const auto& a : w) tracker.Arrive(a.site, a.key);
  double bound = o.epsilon * static_cast<double>(w.size());
  for (const auto& [item, f] : TrueFrequencies(w)) {
    ASSERT_LE(std::fabs(tracker.EstimateFrequency(item) -
                        static_cast<double>(f)),
              bound + 1e-9);
  }
}

TEST(DeterministicFrequencyTest, AbsentItemStaysNearZero) {
  DeterministicFrequencyOptions o;
  o.num_sites = 4;
  o.epsilon = 0.05;
  DeterministicFrequencyTracker tracker(o);
  for (int i = 0; i < 20000; ++i) tracker.Arrive(i % 4, i % 7);
  EXPECT_LE(std::fabs(tracker.EstimateFrequency(999999)), 0.05 * 20000);
}

TEST(DeterministicFrequencyTest, SpaceIsOneOverEps) {
  DeterministicFrequencyOptions o;
  o.num_sites = 4;
  o.epsilon = 0.02;
  DeterministicFrequencyTracker tracker(o);
  auto w = MakeFrequencyWorkload(4, 100000, SiteSchedule::kUniformRandom,
                                 100000, 0.8, 13);
  for (const auto& a : w) tracker.Arrive(a.site, a.key);
  // Sketch capacity 4/eps = 200 counters at 2 words each, plus up to the
  // same again for the last-reported mirror: O(1/eps) with constant ~8-12.
  EXPECT_LE(tracker.space().MaxPeak(), static_cast<uint64_t>(24.0 / 0.02));
  EXPECT_LT(tracker.space().MaxPeak(), 100000u / 10);  // << stream length
}

TEST(DeterministicFrequencyTest, CommunicationScalesWithK) {
  auto run = [](int k) {
    DeterministicFrequencyOptions o;
    o.num_sites = k;
    o.epsilon = 0.05;
    DeterministicFrequencyTracker tracker(o);
    auto w = MakeFrequencyWorkload(k, 150000, SiteSchedule::kRoundRobin, 500,
                                   1.1, 17);
    for (const auto& a : w) tracker.Arrive(a.site, a.key);
    return static_cast<double>(tracker.meter().TotalMessages());
  };
  double k8 = run(8);
  double k32 = run(32);
  EXPECT_GT(k32 / k8, 2.0);  // ~linear in k
}

TEST(RandomizedFrequencyTest, OptionsValidate) {
  RandomizedFrequencyOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.confidence_factor = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(RandomizedFrequencyTest, ExactWhilePIsOne) {
  RandomizedFrequencyOptions o;
  o.num_sites = 16;
  o.epsilon = 0.1;
  o.confidence_factor = 8;
  RandomizedFrequencyTracker tracker(o);
  // p stays 1 while n̄ <= c√k/ε = 320.
  for (int i = 0; i < 300; ++i) {
    tracker.Arrive(i % 16, i % 5);
    ASSERT_DOUBLE_EQ(tracker.p(), 1.0);
  }
  for (uint64_t item = 0; item < 5; ++item) {
    EXPECT_DOUBLE_EQ(tracker.EstimateFrequency(item), 60.0);
  }
}

TEST(RandomizedFrequencyTest, UnbiasedAtFixedTime) {
  // Lemma 3.1: E[f̂'_ij] = f_ij summed over instances and rounds.
  std::vector<uint64_t> counts{12000, 4000, 800, 100};
  auto w = MakePlantedFrequencyWorkload(8, counts,
                                        SiteSchedule::kUniformRandom, 19);
  for (uint64_t item = 0; item < counts.size(); ++item) {
    auto errors = testing_util::CollectErrors(250, [&](uint64_t seed) {
      RandomizedFrequencyOptions o;
      o.num_sites = 8;
      o.epsilon = 0.05;
      o.seed = seed;
      RandomizedFrequencyTracker tracker(o);
      for (const auto& a : w) tracker.Arrive(a.site, a.key);
      return tracker.EstimateFrequency(item) -
             static_cast<double>(counts[item]);
    });
    // std <= O(eps*n/c) ~ 106; mean over 250 trials ~ 7.
    EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 40.0) << "item " << item;
  }
}

TEST(RandomizedFrequencyTest, CoverageAtLeastNinety) {
  const double eps = 0.02;
  std::vector<uint64_t> counts{20000, 10000, 5000, 1000, 200};
  auto w = MakePlantedFrequencyWorkload(8, counts,
                                        SiteSchedule::kUniformRandom, 23);
  double n = static_cast<double>(w.size());
  for (uint64_t item = 0; item < counts.size(); ++item) {
    auto errors = testing_util::CollectErrors(200, [&](uint64_t seed) {
      RandomizedFrequencyOptions o;
      o.num_sites = 8;
      o.epsilon = eps;
      o.seed = seed;
      RandomizedFrequencyTracker tracker(o);
      for (const auto& a : w) tracker.Arrive(a.site, a.key);
      return tracker.EstimateFrequency(item) -
             static_cast<double>(counts[item]);
    });
    EXPECT_GE(CoverageWithin(errors, eps * n), 0.9) << "item " << item;
  }
}

TEST(RandomizedFrequencyTest, RareItemEstimateCanBeNegativeButSmall) {
  // Items with no counter use -d/p: individual answers may be negative, but
  // they stay within the εn window.
  const double eps = 0.05;
  std::vector<uint64_t> counts{30000, 50};
  auto w = MakePlantedFrequencyWorkload(4, counts,
                                        SiteSchedule::kUniformRandom, 29);
  bool saw_negative = false;
  auto errors = testing_util::CollectErrors(200, [&](uint64_t seed) {
    RandomizedFrequencyOptions o;
    o.num_sites = 4;
    o.epsilon = eps;
    o.seed = seed;
    RandomizedFrequencyTracker tracker(o);
    for (const auto& a : w) tracker.Arrive(a.site, a.key);
    double est = tracker.EstimateFrequency(1);
    if (est < 0) saw_negative = true;
    return est - 50.0;
  });
  EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(w.size())),
            0.9);
  EXPECT_TRUE(saw_negative);
}

TEST(RandomizedFrequencyTest, NaiveEstimatorIsBiasedUpward) {
  // DESIGN.md ablation: estimator (2) has positive bias ~Θ(εn/√k) per
  // mid-frequency item; the correct estimator (4) removes it.
  const double eps = 0.05;
  const int k = 16;
  // Many items sized near εn̄/√k so the no-counter case is common.
  std::vector<uint64_t> counts(40, 400);
  auto w = MakePlantedFrequencyWorkload(k, counts,
                                        SiteSchedule::kUniformRandom, 31);
  auto run = [&](bool naive) {
    auto errors = testing_util::CollectErrors(200, [&](uint64_t seed) {
      RandomizedFrequencyOptions o;
      o.num_sites = k;
      o.epsilon = eps;
      o.seed = seed;
      o.naive_boundary_estimator = naive;
      RandomizedFrequencyTracker tracker(o);
      for (const auto& a : w) tracker.Arrive(a.site, a.key);
      return tracker.EstimateFrequency(7) - 400.0;
    });
    return testing_util::MeanOf(errors);
  };
  double biased = run(true);
  double correct = run(false);
  EXPECT_GT(biased, std::fabs(correct) + 5.0);
}

TEST(RandomizedFrequencyTest, SpaceBoundedByVirtualSplit) {
  const double eps = 0.01;
  const int k = 16;
  RandomizedFrequencyOptions o;
  o.num_sites = k;
  o.epsilon = eps;
  o.seed = 5;
  RandomizedFrequencyTracker with_split(o);
  o.virtual_site_split = false;
  RandomizedFrequencyTracker without_split(o);
  // Whole stream of distinct items at one site: worst case for space.
  for (uint64_t i = 0; i < 200000; ++i) {
    with_split.Arrive(0, i);
    without_split.Arrive(0, i);
  }
  EXPECT_GT(with_split.splits(), 0u);
  // The split caps space near p·n̄/k; without it space grows ~k× larger.
  EXPECT_GT(without_split.space().MaxPeak(),
            3 * with_split.space().MaxPeak());
}

TEST(RandomizedFrequencyTest, CommunicationBeatsDeterministicAtLargeK) {
  const int k = 64;
  const double eps = 0.01;
  auto w = MakeFrequencyWorkload(k, 1 << 18, SiteSchedule::kRoundRobin, 1000,
                                 1.1, 37);
  DeterministicFrequencyOptions det;
  det.num_sites = k;
  det.epsilon = eps;
  DeterministicFrequencyTracker det_tracker(det);
  for (const auto& a : w) det_tracker.Arrive(a.site, a.key);

  RandomizedFrequencyOptions rnd;
  rnd.num_sites = k;
  rnd.epsilon = eps;
  rnd.seed = 41;
  RandomizedFrequencyTracker rnd_tracker(rnd);
  for (const auto& a : w) rnd_tracker.Arrive(a.site, a.key);

  EXPECT_GT(det_tracker.meter().TotalMessages(),
            rnd_tracker.meter().TotalMessages());
}

TEST(RandomizedFrequencyTest, ContinuousCheckpointsMostlyCovered) {
  RandomizedFrequencyOptions o;
  o.num_sites = 8;
  o.epsilon = 0.05;
  o.seed = 43;
  RandomizedFrequencyTracker tracker(o);
  auto w = MakeFrequencyWorkload(8, 150000, SiteSchedule::kUniformRandom,
                                 200, 1.2, 47);
  auto checkpoints = sim::ReplayFrequency(&tracker, w, 0, 1.4);
  int misses = 0, counted = 0;
  for (const auto& c : checkpoints) {
    if (c.n < 2000) continue;
    ++counted;
    if (std::fabs(c.estimate - c.truth) > 0.05 * static_cast<double>(c.n)) {
      ++misses;
    }
  }
  ASSERT_GT(counted, 5);
  EXPECT_LE(misses, counted / 5);
}

}  // namespace
}  // namespace frequency
}  // namespace disttrack
