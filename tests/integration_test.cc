// Cross-module integration sweeps: every (algorithm × problem) combination
// replayed over parameter grids of (k, ε, schedule), asserting the accuracy
// contract and Table 1's qualitative space/communication profile. These are
// the library's property tests, instantiated through parameterized gtest.

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "disttrack/core/tracking.h"
#include "disttrack/stream/hard_instances.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace {

using core::Algorithm;
using core::AlgorithmName;
using core::TrackerOptions;
using stream::SiteSchedule;

struct GridParam {
  Algorithm algorithm;
  int k;
  double eps;
  SiteSchedule schedule;
};

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  const auto& p = info.param;
  std::string schedule;
  switch (p.schedule) {
    case SiteSchedule::kRoundRobin:
      schedule = "robin";
      break;
    case SiteSchedule::kUniformRandom:
      schedule = "uniform";
      break;
    case SiteSchedule::kSingleSite:
      schedule = "single";
      break;
    case SiteSchedule::kSkewedGeometric:
      schedule = "skewed";
      break;
    case SiteSchedule::kBursty:
      schedule = "bursty";
      break;
  }
  return AlgorithmName(p.algorithm) + "_k" + std::to_string(p.k) + "_eps" +
         std::to_string(static_cast<int>(p.eps * 1000)) + "_" + schedule;
}

class CountGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(CountGridTest, TracksWithinToleranceAtCheckpoints) {
  const auto& p = GetParam();
  TrackerOptions o;
  o.num_sites = p.k;
  o.epsilon = p.eps;
  o.seed = 4242;
  std::unique_ptr<sim::CountTrackerInterface> tracker;
  ASSERT_TRUE(core::MakeCountTracker(p.algorithm, o, &tracker).ok());
  auto w = stream::MakeCountWorkload(p.k, 60000, p.schedule, 99);
  auto checkpoints = sim::ReplayCount(tracker.get(), w, 1.5);
  int misses = 0, counted = 0;
  for (const auto& c : checkpoints) {
    if (c.n < 2000) continue;
    ++counted;
    if (std::fabs(c.estimate - c.truth) > p.eps * static_cast<double>(c.n)) {
      ++misses;
    }
  }
  ASSERT_GT(counted, 3);
  // Deterministic: zero misses. Randomized/sampling: allow Chebyshev tail.
  if (p.algorithm == Algorithm::kDeterministic) {
    EXPECT_EQ(misses, 0);
  } else {
    EXPECT_LE(misses, (counted + 3) / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CountGridTest,
    ::testing::Values(
        GridParam{Algorithm::kDeterministic, 4, 0.05,
                  SiteSchedule::kRoundRobin},
        GridParam{Algorithm::kDeterministic, 16, 0.02,
                  SiteSchedule::kUniformRandom},
        GridParam{Algorithm::kDeterministic, 64, 0.05,
                  SiteSchedule::kSingleSite},
        GridParam{Algorithm::kRandomized, 4, 0.05,
                  SiteSchedule::kRoundRobin},
        GridParam{Algorithm::kRandomized, 16, 0.02,
                  SiteSchedule::kUniformRandom},
        GridParam{Algorithm::kRandomized, 16, 0.05,
                  SiteSchedule::kSingleSite},
        GridParam{Algorithm::kRandomized, 64, 0.05,
                  SiteSchedule::kSkewedGeometric},
        GridParam{Algorithm::kRandomized, 16, 0.05, SiteSchedule::kBursty},
        GridParam{Algorithm::kSampling, 4, 0.05, SiteSchedule::kRoundRobin},
        GridParam{Algorithm::kSampling, 16, 0.05,
                  SiteSchedule::kUniformRandom},
        GridParam{Algorithm::kSampling, 16, 0.05, SiteSchedule::kSingleSite}),
    GridName);

class FrequencyGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(FrequencyGridTest, TracksHeavyItemWithinTolerance) {
  const auto& p = GetParam();
  TrackerOptions o;
  o.num_sites = p.k;
  o.epsilon = p.eps;
  o.seed = 777;
  std::unique_ptr<sim::FrequencyTrackerInterface> tracker;
  ASSERT_TRUE(core::MakeFrequencyTracker(p.algorithm, o, &tracker).ok());
  auto w = stream::MakeFrequencyWorkload(p.k, 60000, p.schedule, 1000, 1.2,
                                         101);
  auto checkpoints = sim::ReplayFrequency(tracker.get(), w, 0, 1.5);
  int misses = 0, counted = 0;
  for (const auto& c : checkpoints) {
    if (c.n < 2000) continue;
    ++counted;
    if (std::fabs(c.estimate - c.truth) > p.eps * static_cast<double>(c.n)) {
      ++misses;
    }
  }
  ASSERT_GT(counted, 3);
  if (p.algorithm == Algorithm::kDeterministic) {
    EXPECT_EQ(misses, 0);
  } else {
    EXPECT_LE(misses, (counted + 3) / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FrequencyGridTest,
    ::testing::Values(
        GridParam{Algorithm::kDeterministic, 4, 0.05,
                  SiteSchedule::kRoundRobin},
        GridParam{Algorithm::kDeterministic, 16, 0.05,
                  SiteSchedule::kSingleSite},
        GridParam{Algorithm::kRandomized, 4, 0.05,
                  SiteSchedule::kRoundRobin},
        GridParam{Algorithm::kRandomized, 16, 0.05,
                  SiteSchedule::kUniformRandom},
        GridParam{Algorithm::kRandomized, 16, 0.05,
                  SiteSchedule::kSingleSite},
        GridParam{Algorithm::kRandomized, 64, 0.08, SiteSchedule::kBursty},
        GridParam{Algorithm::kSampling, 4, 0.05,
                  SiteSchedule::kUniformRandom},
        GridParam{Algorithm::kSampling, 16, 0.05,
                  SiteSchedule::kRoundRobin}),
    GridName);

class RankGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(RankGridTest, TracksMedianRankWithinTolerance) {
  const auto& p = GetParam();
  TrackerOptions o;
  o.num_sites = p.k;
  o.epsilon = p.eps;
  o.seed = 888;
  o.universe_bits = 10;
  std::unique_ptr<sim::RankTrackerInterface> tracker;
  ASSERT_TRUE(core::MakeRankTracker(p.algorithm, o, &tracker).ok());
  auto w = stream::MakeRankWorkload(p.k, 50000, p.schedule,
                                    stream::ValueOrder::kUniformRandom, 10,
                                    103);
  auto checkpoints = sim::ReplayRank(tracker.get(), w, 512, 1.5);
  int misses = 0, counted = 0;
  for (const auto& c : checkpoints) {
    if (c.n < 2000) continue;
    ++counted;
    if (std::fabs(c.estimate - c.truth) > p.eps * static_cast<double>(c.n)) {
      ++misses;
    }
  }
  ASSERT_GT(counted, 3);
  if (p.algorithm == Algorithm::kDeterministic) {
    EXPECT_EQ(misses, 0);
  } else {
    EXPECT_LE(misses, (counted + 3) / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RankGridTest,
    ::testing::Values(
        GridParam{Algorithm::kDeterministic, 4, 0.1,
                  SiteSchedule::kRoundRobin},
        GridParam{Algorithm::kDeterministic, 16, 0.1,
                  SiteSchedule::kSingleSite},
        GridParam{Algorithm::kRandomized, 4, 0.05,
                  SiteSchedule::kRoundRobin},
        GridParam{Algorithm::kRandomized, 16, 0.05,
                  SiteSchedule::kUniformRandom},
        GridParam{Algorithm::kRandomized, 16, 0.05,
                  SiteSchedule::kSingleSite},
        GridParam{Algorithm::kRandomized, 64, 0.08,
                  SiteSchedule::kSkewedGeometric},
        GridParam{Algorithm::kSampling, 4, 0.05,
                  SiteSchedule::kUniformRandom},
        GridParam{Algorithm::kSampling, 16, 0.05,
                  SiteSchedule::kRoundRobin}),
    GridName);

// The Theorem 2.2 hard distribution µ: trackers must stay accurate under
// both branches (all-at-one-random-site and round-robin).
TEST(HardDistributionIntegrationTest, CountTrackersSurviveMu) {
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized}) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      auto mu = stream::MakeMuInstance(16, 40000, seed);
      TrackerOptions o;
      o.num_sites = 16;
      o.epsilon = 0.05;
      o.seed = seed + 5;
      std::unique_ptr<sim::CountTrackerInterface> tracker;
      ASSERT_TRUE(core::MakeCountTracker(algorithm, o, &tracker).ok());
      auto checkpoints = sim::ReplayCount(tracker.get(), mu.workload, 1.5);
      int misses = 0, counted = 0;
      for (const auto& c : checkpoints) {
        if (c.n < 2000) continue;
        ++counted;
        if (std::fabs(c.estimate - c.truth) >
            0.05 * static_cast<double>(c.n)) {
          ++misses;
        }
      }
      ASSERT_GT(counted, 3);
      EXPECT_LE(misses, (counted + 3) / 4)
          << AlgorithmName(algorithm) << " seed " << seed
          << (mu.single_site_case ? " single" : " robin");
    }
  }
}

// Theorem 2.4's adversarial schedule embeds 1-bit instances; the randomized
// tracker must remain accurate on it (the theorem lower-bounds cost, not
// accuracy — accuracy is the obligation the adversary exploits).
TEST(HardDistributionIntegrationTest, RandomizedCountSurvivesTheorem24) {
  auto hard = stream::MakeTheorem24Workload(16, 0.05, 11, 3);
  TrackerOptions o;
  o.num_sites = 16;
  o.epsilon = 0.1;
  o.seed = 21;
  std::unique_ptr<sim::CountTrackerInterface> tracker;
  ASSERT_TRUE(
      core::MakeCountTracker(Algorithm::kRandomized, o, &tracker).ok());
  auto checkpoints = sim::ReplayCount(tracker.get(), hard.workload, 1.4);
  int misses = 0, counted = 0;
  for (const auto& c : checkpoints) {
    if (c.n < 500) continue;
    ++counted;
    if (std::fabs(c.estimate - c.truth) > 0.1 * static_cast<double>(c.n)) {
      ++misses;
    }
  }
  ASSERT_GT(counted, 3);
  EXPECT_LE(misses, (counted + 3) / 4);
}

// Table 1 communication ordering at k >> 1/ε²-free regime: randomized <
// deterministic for count at large k, and sampling ~ independent of k.
TEST(Table1IntegrationTest, CommunicationOrderingAtLargeK) {
  const int k = 256;
  const double eps = 0.05;
  auto w = stream::MakeCountWorkload(k, 1 << 19,
                                     SiteSchedule::kUniformRandom, 7);
  uint64_t messages[3] = {0, 0, 0};
  int idx = 0;
  for (auto algorithm : {Algorithm::kDeterministic, Algorithm::kRandomized,
                         Algorithm::kSampling}) {
    TrackerOptions o;
    o.num_sites = k;
    o.epsilon = eps;
    o.seed = 3;
    std::unique_ptr<sim::CountTrackerInterface> tracker;
    ASSERT_TRUE(core::MakeCountTracker(algorithm, o, &tracker).ok());
    for (const auto& a : w) tracker->Arrive(a.site);
    messages[idx++] = tracker->meter().TotalMessages();
  }
  EXPECT_GT(messages[0], messages[1]);  // deterministic > randomized
}

}  // namespace
}  // namespace disttrack
