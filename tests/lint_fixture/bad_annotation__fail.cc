// Fixture: a suppression without a reason must produce bad-annotation.
#include <unordered_map>

namespace disttrack {

struct Summary {
  std::unordered_map<unsigned long, int> m_;

  int Total() const {
    int total = 0;
    // disttrack-lint: allow(unordered-iter)
    for (const auto& kv : m_) total += kv.second;
    return total;
  }
};

}  // namespace disttrack
