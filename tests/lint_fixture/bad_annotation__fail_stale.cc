// Fixture: an annotation that suppresses nothing is stale and must
// produce bad-annotation.
namespace disttrack {

struct Summary {
  int total = 0;

  int Total() const {
    // disttrack-lint: allow(unordered-iter) -- nothing here iterates an
    // unordered container, so this annotation is dead weight.
    return total;
  }
};

}  // namespace disttrack
