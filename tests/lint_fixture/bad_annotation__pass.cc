// Fixture: a well-formed suppression — named rule plus a reason — on a
// real finding lints clean.
#include <unordered_map>

namespace disttrack {

struct Summary {
  std::unordered_map<unsigned long, int> m_;

  int Total() const {
    int total = 0;
    // disttrack-lint: allow(unordered-iter) -- order-independent fold:
    // addition is commutative and nothing observes the visit order.
    for (const auto& kv : m_) total += kv.second;
    return total;
  }
};

}  // namespace disttrack
