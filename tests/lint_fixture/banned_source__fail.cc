// Fixture: libc randomness outside common/random.* must produce
// banned-source.
#include <cstdlib>

namespace disttrack {

unsigned PickSeed() {
  return static_cast<unsigned>(rand());  // finding
}

}  // namespace disttrack
