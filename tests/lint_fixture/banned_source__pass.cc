// Fixture: member calls that happen to be named like libc sources are
// fine — the rule only bans the free/std:: spellings.
namespace disttrack {

struct Wallclock {
  double seconds = 0;
};

struct Meter {
  Wallclock clock_;
  double elapsed() const { return clock_.seconds; }
};

struct Probe {
  double value = 0;
  double sample() const { return value; }
};

double ReadProbe(const Probe& p) { return p.sample(); }

}  // namespace disttrack
