// Fixture: a CommMeter charge in a tap-wired file with no adjacent tap
// emit must produce meter-tap. The tap_ member is declared far from the
// charge so the declaration itself does not satisfy the window.
namespace disttrack {

struct Meter {
  void RecordUpload(int site, int words);
};

struct Tap {
  virtual ~Tap() = default;
  virtual void OnMessage(int payload) = 0;
};

struct Tracker {
  Meter meter_;
  Tap* tap_ = nullptr;

  // --- padding so the tap_ declaration sits outside the pairing window
  int pad_a = 0;
  int pad_b = 0;
  int pad_c = 0;
  int pad_d = 0;
  int pad_e = 0;
  int pad_f = 0;

  void Report(int site) {
    meter_.RecordUpload(site, 1);  // finding: no tap emit nearby
  }
};

}  // namespace disttrack
