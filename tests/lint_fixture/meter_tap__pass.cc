// Fixture: the canonical charge-then-emit pairing lints clean.
namespace disttrack {

struct Meter {
  void RecordUpload(int site, int words);
};

struct Tap {
  virtual ~Tap() = default;
  virtual void OnMessage(int payload) = 0;
};

struct Tracker {
  Meter meter_;
  Tap* tap_ = nullptr;

  void Report(int site) {
    meter_.RecordUpload(site, 1);
    if (tap_ != nullptr) {
      tap_->OnMessage(site);
    }
  }
};

}  // namespace disttrack
