// Fixture: a pointer-typed map key must produce pointer-key.
#include <map>

namespace disttrack {

struct Node {
  int value = 0;
};

struct Index {
  std::map<Node*, int> by_node_;  // finding
};

}  // namespace disttrack
