// Fixture: keying by a minted id and sorting pointers by a field (not by
// address) are both fine.
#include <algorithm>
#include <map>
#include <vector>

namespace disttrack {

struct Node {
  unsigned long id = 0;
};

struct Index {
  std::map<unsigned long, int> by_id_;
};

void SortById(std::vector<Node*>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
}

}  // namespace disttrack
