// simd-isolation fail fixture: a raw AVX2 intrinsic outside
// common/simd.h forks the scalar/SIMD behavior and must be flagged.

#include <immintrin.h>

namespace disttrack {

long long FirstLane(const long long* p) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  return _mm256_extract_epi64(v, 0);
}

}  // namespace disttrack
