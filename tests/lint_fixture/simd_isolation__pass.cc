// simd-isolation pass fixture: vector work routed through the
// common/simd.h wrappers keeps raw intrinsics out of this file.

#include <cstdint>

#include "disttrack/common/simd.h"

namespace disttrack {

uint64_t MergeHeads(const uint64_t* a, const uint64_t* b, uint64_t* out) {
  simd::MergeSorted(a, 4, b, 4, out);
  return out[0];
}

bool SortInRegisters(uint64_t* v, size_t n) {
  return simd::SortSmall16(v, n);
}

}  // namespace disttrack
