// Fixture: a delivery entry point taking a site id with no range check
// must produce site-check.
namespace disttrack {

struct Tracker {
  void Arrive(int site);
  unsigned long counts_[64] = {};
};

void Tracker::Arrive(int site) {
  counts_[site] += 1;  // finding: no CheckSiteInRange before indexing
}

}  // namespace disttrack
