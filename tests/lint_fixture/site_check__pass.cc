// Fixture: entry points that validate via sim::CheckSiteInRange (or take
// no site id at all) lint clean.
namespace disttrack {
namespace sim {
void CheckSiteInRange(int site, int num_sites);
}  // namespace sim

struct Tracker {
  void Arrive(int site);
  void Ingest(unsigned long key);
  int num_sites_ = 64;
  unsigned long counts_[64] = {};
};

void Tracker::Arrive(int site) {
  sim::CheckSiteInRange(site, num_sites_);
  counts_[site] += 1;
}

// Not an Arrive*/Push* name: the rule does not apply.
void Tracker::Ingest(unsigned long key) { counts_[key % 64] += 1; }

}  // namespace disttrack
