// Fixture: iterating an unordered container must produce unordered-iter.
#include <unordered_map>

namespace disttrack {

struct Summary {
  std::unordered_map<unsigned long, unsigned long> counters_;

  unsigned long Total() const {
    unsigned long total = 0;
    for (const auto& kv : counters_) total += kv.second;  // finding
    return total;
  }

  void Sweep() {
    for (auto it = counters_.begin(); it != counters_.end();) {  // finding
      it = counters_.erase(it);
    }
  }
};

}  // namespace disttrack
