// Fixture: membership probes and iteration over drained (sorted) copies
// of an unordered container are fine; only direct iteration is banned.
#include <unordered_map>
#include <utility>
#include <vector>

namespace disttrack {

struct Summary {
  std::unordered_map<unsigned long, unsigned long> counters_;

  std::vector<std::pair<unsigned long, unsigned long>> SortedItems() const;

  // find()/end() is the membership idiom, not a walk.
  bool Has(unsigned long key) const {
    return counters_.find(key) != counters_.end();
  }

  unsigned long Total() const {
    unsigned long total = 0;
    // The range expression is a call result (a sorted vector), not the
    // container itself.
    for (const auto& kv : SortedItems()) total += kv.second;
    return total;
  }
};

}  // namespace disttrack
