// Miniature wire header for the wire-switch failing fixture.
#ifndef LINT_FIXTURE_WIRE_SWITCH_FAIL_WIRE_H_
#define LINT_FIXTURE_WIRE_SWITCH_FAIL_WIRE_H_

#include <cstdint>

enum class MsgType : uint8_t {
  kCoarseReport = 1,
  kBroadcast = 2,
  kAck = 3,
};

#endif  // LINT_FIXTURE_WIRE_SWITCH_FAIL_WIRE_H_
