// Every enumerator appears in every switch: the frozen-wire shape.
#include "wire.h"

bool KnownType(uint8_t raw_type) {
  switch (static_cast<MsgType>(raw_type)) {
    case MsgType::kCoarseReport:
    case MsgType::kBroadcast:
    case MsgType::kAck:
      return true;
  }
  return false;
}

bool HasVectors(MsgType type) {
  switch (type) {
    case MsgType::kCoarseReport:
    case MsgType::kBroadcast:
    case MsgType::kAck:
      return false;
  }
  return false;
}

unsigned PaperWordCharge(MsgType type, unsigned per_message, int num_sites) {
  switch (type) {
    case MsgType::kCoarseReport:
      return per_message;
    case MsgType::kBroadcast:
      return per_message * static_cast<unsigned>(num_sites);
    case MsgType::kAck:
      return 0;
  }
  return 0;
}
