// sim::ParallelCluster: determinism and serial-equivalence pins.
//
// The contract under test is strong: for the randomized count, frequency,
// and rank trackers (default fast-path options) and the deterministic
// count tracker, the sharded replay is BIT-IDENTICAL to the serial
// Replay* drivers — same checkpoint ns, same estimates to the last ulp,
// same communication totals — at every thread count, because epoch
// barriers sit exactly on the (deterministic) broadcast schedule and each
// site consumes its private RNG stream at the serial per-site offsets.
// These tests pin that property across thread counts, the k = 1 and
// k = max edge shards, skewed/bursty schedules, and the serial fallback
// paths; TSan runs them in CI (fast label) to certify the barriers.

#include "disttrack/sim/parallel_cluster.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "disttrack/sim/online.h"

#include "gtest/gtest.h"

#include "disttrack/core/tracking.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/stream/workload.h"
#include "tests/test_util.h"

namespace disttrack {
namespace {

using sim::Checkpoint;
using sim::ParallelCluster;
using sim::SiteStream;
using sim::Workload;

core::TrackerOptions Options(int k, uint64_t seed = 42,
                             double eps = 0.05) {
  core::TrackerOptions opt;
  opt.num_sites = k;
  opt.epsilon = eps;
  opt.seed = seed;
  return opt;
}

std::unique_ptr<sim::CountTrackerInterface> MakeCount(
    const core::TrackerOptions& opt,
    core::Algorithm alg = core::Algorithm::kRandomized) {
  std::unique_ptr<sim::CountTrackerInterface> t;
  EXPECT_TRUE(core::MakeCountTracker(alg, opt, &t).ok());
  return t;
}

std::unique_ptr<sim::FrequencyTrackerInterface> MakeFrequency(
    const core::TrackerOptions& opt) {
  std::unique_ptr<sim::FrequencyTrackerInterface> t;
  EXPECT_TRUE(
      core::MakeFrequencyTracker(core::Algorithm::kRandomized, opt, &t).ok());
  return t;
}

std::unique_ptr<sim::RankTrackerInterface> MakeRank(
    const core::TrackerOptions& opt) {
  std::unique_ptr<sim::RankTrackerInterface> t;
  EXPECT_TRUE(core::MakeRankTracker(core::Algorithm::kRandomized, opt, &t).ok());
  return t;
}

// Bit-exact comparison: n, estimate, and truth must all match.
void ExpectIdentical(const std::vector<Checkpoint>& a,
                     const std::vector<Checkpoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].n, b[i].n) << "checkpoint " << i;
    EXPECT_EQ(a[i].estimate, b[i].estimate) << "checkpoint " << i;
    EXPECT_EQ(a[i].truth, b[i].truth) << "checkpoint " << i;
  }
}

// ------------------------------------------------------------------ count

TEST(ParallelClusterCount, BitIdenticalToSerialAcrossThreadCounts) {
  for (int k : {1, 3, 8}) {
    for (auto sched : {stream::SiteSchedule::kUniformRandom,
                       stream::SiteSchedule::kSkewedGeometric,
                       stream::SiteSchedule::kBursty}) {
      SiteStream sites = stream::MakeCountSites(k, 60000, sched, 7);
      auto serial_tracker = MakeCount(Options(k));
      auto serial = sim::ReplayCountSites(serial_tracker.get(), sites, 1.5);
      for (int threads : {1, 2, 4, 7}) {
        ParallelCluster cluster(threads);
        auto tracker = MakeCount(Options(k));
        auto parallel = cluster.ReplayCountSites(tracker.get(), sites, 1.5);
        EXPECT_TRUE(cluster.last_replay_sharded());
        ExpectIdentical(serial, parallel);
        // The message schedule is the same, so the traffic is too.
        EXPECT_EQ(serial_tracker->meter().TotalMessages(),
                  tracker->meter().TotalMessages());
        EXPECT_EQ(serial_tracker->meter().TotalWords(),
                  tracker->meter().TotalWords());
      }
    }
  }
}

TEST(ParallelClusterCount, WorkloadOverloadMatchesSiteStreamOverload) {
  int k = 5;
  Workload w = stream::MakeCountWorkload(k, 20000,
                                         stream::SiteSchedule::kUniformRandom,
                                         11);
  SiteStream sites = stream::MakeCountSites(
      k, 20000, stream::SiteSchedule::kUniformRandom, 11);
  ParallelCluster cluster(3);
  auto a = MakeCount(Options(k));
  auto b = MakeCount(Options(k));
  auto cw = cluster.ReplayCount(a.get(), w, 1.5);
  auto cs = cluster.ReplayCountSites(b.get(), sites, 1.5);
  ExpectIdentical(cw, cs);
}

TEST(ParallelClusterCount, DeterministicTrackerShardsExactly) {
  int k = 6;
  SiteStream sites = stream::MakeCountSites(
      k, 30000, stream::SiteSchedule::kSkewedGeometric, 3);
  auto serial_tracker = MakeCount(Options(k), core::Algorithm::kDeterministic);
  auto serial = sim::ReplayCountSites(serial_tracker.get(), sites, 1.5);
  ParallelCluster cluster(4);
  auto tracker = MakeCount(Options(k), core::Algorithm::kDeterministic);
  auto parallel = cluster.ReplayCountSites(tracker.get(), sites, 1.5);
  EXPECT_TRUE(cluster.last_replay_sharded());
  ExpectIdentical(serial, parallel);
  EXPECT_EQ(serial_tracker->meter().TotalMessages(),
            tracker->meter().TotalMessages());
}

TEST(ParallelClusterCount, FallsBackToSerialForPerArrivalCoinPath) {
  int k = 4;
  SiteStream sites = stream::MakeCountSites(
      k, 5000, stream::SiteSchedule::kUniformRandom, 5);
  core::TrackerOptions opt = Options(k);
  opt.use_skip_sampling = false;
  auto serial_tracker = MakeCount(opt);
  auto serial = sim::ReplayCountSites(serial_tracker.get(), sites, 1.5);
  ParallelCluster cluster(4);
  auto tracker = MakeCount(opt);
  auto parallel = cluster.ReplayCountSites(tracker.get(), sites, 1.5);
  EXPECT_FALSE(cluster.last_replay_sharded());
  ExpectIdentical(serial, parallel);
}

TEST(ParallelClusterCount, SamplingBaselineFallsBackToSerial) {
  int k = 4;
  SiteStream sites = stream::MakeCountSites(
      k, 3000, stream::SiteSchedule::kUniformRandom, 5);
  ParallelCluster cluster(2);
  auto tracker = MakeCount(Options(k), core::Algorithm::kSampling);
  auto parallel = cluster.ReplayCountSites(tracker.get(), sites, 1.5);
  EXPECT_FALSE(cluster.last_replay_sharded());
  EXPECT_EQ(parallel.back().n, 3000u);
}

// A light statistical check on top of the exactness pins: the sharded
// replay's final estimate stays within the protocol's error bound over
// independent seeds (it must, being bit-identical to serial — this guards
// the guard).
TEST(ParallelClusterCount, FinalErrorWithinBoundOverSeeds) {
  int k = 8;
  uint64_t n = 40000;
  SiteStream sites = stream::MakeCountSites(
      k, n, stream::SiteSchedule::kUniformRandom, 23);
  ParallelCluster cluster(3);
  int failures = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto tracker = MakeCount(Options(k, seed, 0.05));
    auto cps = cluster.ReplayCountSites(tracker.get(), sites, 2.0);
    double rel = std::abs(cps.back().estimate - cps.back().truth) /
                 static_cast<double>(n);
    if (rel > 0.05) ++failures;
  }
  // eps = 0.05 at confidence c = 2 gives failure probability <= 1/4;
  // observed coverage is far better (ROADMAP notes ~0.99). 8/20 would be
  // a wild outlier.
  EXPECT_LE(failures, 8);
}

// -------------------------------------------------------------- frequency

TEST(ParallelClusterFrequency, BitIdenticalToSerialAcrossThreadCounts) {
  for (int k : {1, 4, 16}) {
    Workload w = stream::MakeFrequencyWorkload(
        k, 40000, stream::SiteSchedule::kUniformRandom, 5000, 1.1, 9);
    uint64_t query = 0;  // head item of the Zipf draw
    auto serial_tracker = MakeFrequency(Options(k));
    auto serial =
        sim::ReplayFrequency(serial_tracker.get(), w, query, 1.5);
    for (int threads : {1, 3, 6}) {
      ParallelCluster cluster(threads);
      auto tracker = MakeFrequency(Options(k));
      auto parallel = cluster.ReplayFrequency(tracker.get(), w, query, 1.5);
      EXPECT_TRUE(cluster.last_replay_sharded());
      ExpectIdentical(serial, parallel);
      EXPECT_EQ(serial_tracker->meter().TotalMessages(),
                tracker->meter().TotalMessages());
      EXPECT_EQ(serial_tracker->meter().TotalWords(),
                tracker->meter().TotalWords());
    }
  }
}

TEST(ParallelClusterFrequency, BurstySingleSiteLoadShardsExactly) {
  // All mass on few sites exercises the virtual-site split machinery and
  // the k = max edge (threads > active sites).
  for (auto sched : {stream::SiteSchedule::kSingleSite,
                     stream::SiteSchedule::kBursty}) {
    int k = 8;
    Workload w =
        stream::MakeFrequencyWorkload(k, 30000, sched, 2000, 0.0, 13);
    auto serial_tracker = MakeFrequency(Options(k));
    auto serial = sim::ReplayFrequency(serial_tracker.get(), w, 1, 1.5);
    ParallelCluster cluster(6);
    auto tracker = MakeFrequency(Options(k));
    auto parallel = cluster.ReplayFrequency(tracker.get(), w, 1, 1.5);
    ExpectIdentical(serial, parallel);
  }
}

TEST(ParallelClusterFrequency, FallsBackForLegacyCounterStore) {
  int k = 4;
  Workload w = stream::MakeFrequencyWorkload(
      k, 4000, stream::SiteSchedule::kUniformRandom, 500, 0.0, 3);
  core::TrackerOptions opt = Options(k);
  opt.use_flat_counters = false;
  auto serial_tracker = MakeFrequency(opt);
  auto serial = sim::ReplayFrequency(serial_tracker.get(), w, 1, 1.5);
  ParallelCluster cluster(4);
  auto tracker = MakeFrequency(opt);
  auto parallel = cluster.ReplayFrequency(tracker.get(), w, 1, 1.5);
  EXPECT_FALSE(cluster.last_replay_sharded());
  ExpectIdentical(serial, parallel);
}

// ------------------------------------------------------------------- rank

TEST(ParallelClusterRank, BitIdenticalToSerialAcrossThreadCounts) {
  for (int k : {1, 4, 12}) {
    Workload w = stream::MakeRankWorkload(
        k, 30000, stream::SiteSchedule::kUniformRandom,
        stream::ValueOrder::kUniformRandom, 14, 17);
    uint64_t query = 1ull << 13;
    auto serial_tracker = MakeRank(Options(k));
    auto serial = sim::ReplayRank(serial_tracker.get(), w, query, 1.5);
    for (int threads : {1, 3, 6}) {
      ParallelCluster cluster(threads);
      auto tracker = MakeRank(Options(k));
      auto parallel = cluster.ReplayRank(tracker.get(), w, query, 1.5);
      EXPECT_TRUE(cluster.last_replay_sharded());
      ExpectIdentical(serial, parallel);
      EXPECT_EQ(serial_tracker->meter().TotalMessages(),
                tracker->meter().TotalMessages());
      EXPECT_EQ(serial_tracker->meter().TotalWords(),
                tracker->meter().TotalWords());
    }
  }
}

TEST(ParallelClusterRank, SortedAndSkewedInputsShardExactly) {
  int k = 6;
  for (auto order :
       {stream::ValueOrder::kAscending, stream::ValueOrder::kClustered}) {
    Workload w = stream::MakeRankWorkload(
        k, 20000, stream::SiteSchedule::kSkewedGeometric, order, 12, 29);
    uint64_t query = 1ull << 11;
    auto serial_tracker = MakeRank(Options(k));
    auto serial = sim::ReplayRank(serial_tracker.get(), w, query, 1.5);
    ParallelCluster cluster(4);
    auto tracker = MakeRank(Options(k));
    auto parallel = cluster.ReplayRank(tracker.get(), w, query, 1.5);
    ExpectIdentical(serial, parallel);
  }
}

TEST(ParallelClusterRank, StagedLadderOffAlsoShardsExactly) {
  // use_shared_ladder = false exercises the per-level staging feed under
  // the shard driver.
  int k = 4;
  Workload w = stream::MakeRankWorkload(
      k, 15000, stream::SiteSchedule::kUniformRandom,
      stream::ValueOrder::kUniformRandom, 12, 31);
  core::TrackerOptions opt = Options(k);
  opt.use_shared_ladder = false;
  auto serial_tracker = MakeRank(opt);
  auto serial = sim::ReplayRank(serial_tracker.get(), w, 100, 1.5);
  ParallelCluster cluster(4);
  auto tracker = MakeRank(opt);
  auto parallel = cluster.ReplayRank(tracker.get(), w, 100, 1.5);
  EXPECT_TRUE(cluster.last_replay_sharded());
  ExpectIdentical(serial, parallel);
}

TEST(ParallelClusterRank, PerElementFeedFallsBack) {
  int k = 4;
  Workload w = stream::MakeRankWorkload(
      k, 5000, stream::SiteSchedule::kUniformRandom,
      stream::ValueOrder::kUniformRandom, 12, 37);
  core::TrackerOptions opt = Options(k);
  opt.use_batch_compaction = false;
  auto serial_tracker = MakeRank(opt);
  auto serial = sim::ReplayRank(serial_tracker.get(), w, 100, 1.5);
  ParallelCluster cluster(2);
  auto tracker = MakeRank(opt);
  auto parallel = cluster.ReplayRank(tracker.get(), w, 100, 1.5);
  EXPECT_FALSE(cluster.last_replay_sharded());
  ExpectIdentical(serial, parallel);
}

// ------------------------------------------------------------ edge shapes

TEST(ParallelClusterEdge, EmptyAndTinyWorkloads) {
  int k = 3;
  ParallelCluster cluster(4);
  {
    auto tracker = MakeCount(Options(k));
    auto cps = cluster.ReplayCountSites(tracker.get(), SiteStream{}, 1.5);
    ASSERT_EQ(cps.size(), 1u);
    EXPECT_EQ(cps[0].n, 0u);
  }
  {
    // Fewer elements than sites and than threads.
    SiteStream sites{2, 0};
    auto serial_tracker = MakeCount(Options(k));
    auto serial = sim::ReplayCountSites(serial_tracker.get(), sites, 1.5);
    auto tracker = MakeCount(Options(k));
    auto parallel = cluster.ReplayCountSites(tracker.get(), sites, 1.5);
    ExpectIdentical(serial, parallel);
  }
}

TEST(ParallelClusterEdge, AutoThreadsMatchesSerialBitForBit) {
  // kAutoThreads sizes the pool from the hardware, clamped per replay by
  // the site count; whatever it resolves to, the replay must stay
  // bit-identical to the serial driver.
  int k = 6;
  Workload w = stream::MakeFrequencyWorkload(
      k, 20000, stream::SiteSchedule::kUniformRandom, 1000, 1.1, 43);
  ParallelCluster cluster(ParallelCluster::kAutoThreads);
  EXPECT_GE(cluster.threads(), 1);
  auto serial_tracker = MakeFrequency(Options(k));
  auto serial = sim::ReplayFrequency(serial_tracker.get(), w, 0, 1.5);
  auto tracker = MakeFrequency(Options(k));
  auto parallel = cluster.ReplayFrequency(tracker.get(), w, 0, 1.5);
  ExpectIdentical(serial, parallel);
  // And for rank, whose keyed plan skips the index arrays.
  auto serial_rank_tracker = MakeRank(Options(k));
  auto serial_rank = sim::ReplayRank(serial_rank_tracker.get(), w, 500, 1.5);
  auto rank_tracker = MakeRank(Options(k));
  ExpectIdentical(serial_rank,
                  cluster.ReplayRank(rank_tracker.get(), w, 500, 1.5));
}

TEST(ParallelClusterEdge, RepeatedRunsAreDeterministic) {
  int k = 8;
  Workload w = stream::MakeFrequencyWorkload(
      k, 25000, stream::SiteSchedule::kUniformRandom, 1000, 1.1, 41);
  ParallelCluster cluster(4);
  auto t1 = MakeFrequency(Options(k));
  auto t2 = MakeFrequency(Options(k));
  auto a = cluster.ReplayFrequency(t1.get(), w, 0, 1.5);
  auto b = cluster.ReplayFrequency(t2.get(), w, 0, 1.5);
  ExpectIdentical(a, b);
}

TEST(ParallelClusterEdge, OneClusterManyReplaysKeepsWorkersAlive) {
  // Reuses one pool across problems and thread-count-many task shapes.
  ParallelCluster cluster(3);
  for (int k : {1, 5}) {
    SiteStream sites = stream::MakeCountSites(
        k, 8000, stream::SiteSchedule::kUniformRandom, 2);
    auto serial_tracker = MakeCount(Options(k));
    auto serial = sim::ReplayCountSites(serial_tracker.get(), sites, 2.0);
    auto tracker = MakeCount(Options(k));
    ExpectIdentical(serial,
                    cluster.ReplayCountSites(tracker.get(), sites, 2.0));
  }
}

// ---------------------------------------------------------- online ingest
//
// The online sessions (sim/online.h) must agree with the serial drivers
// without the replay plan pass: the count session bit-exactly for ANY
// push partition (speculation + rollback changes no coin draw), the
// keyed sessions bit-exactly whenever serial delivery uses the SAME
// chunk sequence (push boundaries cut rank runs, so a different
// partition is distribution-equivalent only — covered by the statistical
// tier below).

// Pushes the stream through the session one segment per boundary
// (ascending, last == total), sampling the estimate after each — the
// online analogue of the Replay* checkpoint loop.
std::vector<Checkpoint> OnlineCountRun(sim::OnlineCountSession* session,
                                       sim::CountTrackerInterface* tracker,
                                       const SiteStream& sites,
                                       const std::vector<uint64_t>& bounds) {
  std::vector<Checkpoint> out;
  uint64_t pos = 0;
  for (uint64_t b : bounds) {
    session->PushSites(sites.data() + pos, b - pos);
    pos = b;
    out.push_back(
        Checkpoint{pos, tracker->EstimateCount(), static_cast<double>(pos)});
  }
  return out;
}

std::vector<Checkpoint> OnlineFrequencyRun(
    sim::OnlineKeyedSession* session, sim::FrequencyTrackerInterface* tracker,
    const Workload& w, uint64_t query, const std::vector<uint64_t>& bounds) {
  std::vector<Checkpoint> out;
  uint64_t pos = 0;
  uint64_t freq = 0;
  for (uint64_t b : bounds) {
    session->Push(w.data() + pos, b - pos);
    for (uint64_t i = pos; i < b; ++i) {
      if (w[i].key == query) ++freq;
    }
    pos = b;
    session->Sync();
    out.push_back(Checkpoint{pos, tracker->EstimateFrequency(query),
                             static_cast<double>(freq)});
  }
  return out;
}

std::vector<Checkpoint> OnlineRankRun(sim::OnlineKeyedSession* session,
                                      sim::RankTrackerInterface* tracker,
                                      const Workload& w, uint64_t query,
                                      const std::vector<uint64_t>& bounds) {
  std::vector<Checkpoint> out;
  uint64_t pos = 0;
  uint64_t rank = 0;
  for (uint64_t b : bounds) {
    session->Push(w.data() + pos, b - pos);
    for (uint64_t i = pos; i < b; ++i) {
      if (w[i].key < query) ++rank;
    }
    pos = b;
    session->Sync();
    out.push_back(Checkpoint{pos, tracker->EstimateRank(query),
                             static_cast<double>(rank)});
  }
  return out;
}

void ExpectSameTraffic(const sim::CountTrackerInterface& a,
                       const sim::CountTrackerInterface& b) {
  EXPECT_EQ(a.meter().TotalMessages(), b.meter().TotalMessages());
  EXPECT_EQ(a.meter().TotalWords(), b.meter().TotalWords());
}

template <typename Tracker>
void ExpectSameKeyedTraffic(const Tracker& a, const Tracker& b) {
  EXPECT_EQ(a.meter().TotalMessages(), b.meter().TotalMessages());
  EXPECT_EQ(a.meter().TotalWords(), b.meter().TotalWords());
}

TEST(OnlineCount, MatchesSerialReplayAcrossThreadCounts) {
  for (int k : {1, 3, 8}) {
    for (auto sched : {stream::SiteSchedule::kUniformRandom,
                       stream::SiteSchedule::kSkewedGeometric,
                       stream::SiteSchedule::kBursty,
                       stream::SiteSchedule::kSingleSite}) {
      SiteStream sites = stream::MakeCountSites(k, 60000, sched, 7);
      auto serial_tracker = MakeCount(Options(k));
      auto serial = sim::ReplayCountSites(serial_tracker.get(), sites, 1.5);
      std::vector<uint64_t> bounds = sim::CheckpointCounts(sites.size(), 1.5);
      for (int threads : {1, 2, 4, 7}) {
        ParallelCluster cluster(threads);
        auto tracker = MakeCount(Options(k));
        sim::OnlineCountSession session(&cluster, tracker.get());
        EXPECT_TRUE(session.sharded());
        auto online = OnlineCountRun(&session, tracker.get(), sites, bounds);
        ExpectIdentical(serial, online);
        // The very first arrival broadcasts (limit = 1), so at least that
        // push must have been unwound and re-delivered serially.
        EXPECT_GT(session.rollbacks(), 0u);
        ExpectSameTraffic(*serial_tracker, *tracker);
      }
    }
  }
}

TEST(OnlineCount, ArbitraryPushBoundariesAreExact) {
  // The count session is partition-insensitive: compare growing, never-
  // aligned pushes against ONE serial delivery of the whole stream.
  int k = 6;
  SiteStream sites = stream::MakeCountSites(
      k, 40000, stream::SiteSchedule::kSkewedGeometric, 19);
  auto serial_tracker = MakeCount(Options(k));
  serial_tracker->ArriveSites(sites.data(), sites.size());
  ParallelCluster cluster(4);
  auto tracker = MakeCount(Options(k));
  sim::OnlineCountSession session(&cluster, tracker.get());
  size_t pos = 0;
  size_t push = 1;
  while (pos < sites.size()) {
    size_t len = std::min(push, sites.size() - pos);
    session.PushSites(sites.data() + pos, len);
    pos += len;
    push = push * 2 + 1;
  }
  EXPECT_EQ(serial_tracker->EstimateCount(), tracker->EstimateCount());
  ExpectSameTraffic(*serial_tracker, *tracker);
}

TEST(OnlineCount, FallsBackWithoutOnlineShardSupport) {
  int k = 4;
  SiteStream sites = stream::MakeCountSites(
      k, 8000, stream::SiteSchedule::kUniformRandom, 5);
  ParallelCluster cluster(4);
  {
    // Per-arrival coin path: sharded replay exists but is not online-
    // ready (no snapshot hooks) — the session must fall back to serial.
    core::TrackerOptions opt = Options(k);
    opt.use_skip_sampling = false;
    auto serial_tracker = MakeCount(opt);
    serial_tracker->ArriveSites(sites.data(), sites.size());
    auto tracker = MakeCount(opt);
    sim::OnlineCountSession session(&cluster, tracker.get());
    EXPECT_FALSE(session.sharded());
    session.PushSites(sites);
    EXPECT_EQ(session.rollbacks(), 0u);
    EXPECT_EQ(serial_tracker->EstimateCount(), tracker->EstimateCount());
    ExpectSameTraffic(*serial_tracker, *tracker);
  }
  {
    auto serial_tracker = MakeCount(Options(k), core::Algorithm::kDeterministic);
    serial_tracker->ArriveSites(sites.data(), sites.size());
    auto tracker = MakeCount(Options(k), core::Algorithm::kDeterministic);
    sim::OnlineCountSession session(&cluster, tracker.get());
    EXPECT_FALSE(session.sharded());
    session.PushSites(sites);
    EXPECT_EQ(serial_tracker->EstimateCount(), tracker->EstimateCount());
    ExpectSameTraffic(*serial_tracker, *tracker);
  }
}

TEST(OnlineFrequency, MatchesSerialReplayAcrossThreadCounts) {
  for (int k : {1, 4, 16}) {
    Workload w = stream::MakeFrequencyWorkload(
        k, 40000, stream::SiteSchedule::kUniformRandom, 5000, 1.1, 9);
    uint64_t query = 0;
    auto serial_tracker = MakeFrequency(Options(k));
    auto serial = sim::ReplayFrequency(serial_tracker.get(), w, query, 1.5);
    std::vector<uint64_t> bounds = sim::CheckpointCounts(w.size(), 1.5);
    for (int threads : {1, 2, 4, 7}) {
      ParallelCluster cluster(threads);
      auto tracker = MakeFrequency(Options(k));
      sim::OnlineKeyedSession session(&cluster, tracker.get());
      EXPECT_TRUE(session.sharded());
      auto online =
          OnlineFrequencyRun(&session, tracker.get(), w, query, bounds);
      ExpectIdentical(serial, online);
      EXPECT_GT(session.epoch_splits(), 0u);
      ExpectSameKeyedTraffic(*serial_tracker, *tracker);
    }
  }
}

TEST(OnlineFrequency, BurstySingleSiteAndMisalignedPushes) {
  // Frequency has no run buffering, so even a partition nobody else uses
  // (fixed 1009-arrival pushes) must match ONE serial batch bit-exactly.
  for (auto sched : {stream::SiteSchedule::kSingleSite,
                     stream::SiteSchedule::kBursty}) {
    int k = 8;
    Workload w =
        stream::MakeFrequencyWorkload(k, 30000, sched, 2000, 0.0, 13);
    auto serial_tracker = MakeFrequency(Options(k));
    serial_tracker->ArriveBatch(w.data(), w.size());
    ParallelCluster cluster(6);
    auto tracker = MakeFrequency(Options(k));
    sim::OnlineKeyedSession session(&cluster, tracker.get());
    size_t pos = 0;
    while (pos < w.size()) {
      size_t len = std::min<size_t>(1009, w.size() - pos);
      session.Push(w.data() + pos, len);
      pos += len;
    }
    session.Sync();
    EXPECT_EQ(serial_tracker->EstimateFrequency(1),
              tracker->EstimateFrequency(1));
    ExpectSameKeyedTraffic(*serial_tracker, *tracker);
  }
}

TEST(OnlineFrequency, FallsBackForLegacyCounterStore) {
  int k = 4;
  Workload w = stream::MakeFrequencyWorkload(
      k, 4000, stream::SiteSchedule::kUniformRandom, 500, 0.0, 3);
  core::TrackerOptions opt = Options(k);
  opt.use_flat_counters = false;
  auto serial_tracker = MakeFrequency(opt);
  serial_tracker->ArriveBatch(w.data(), w.size());
  ParallelCluster cluster(4);
  auto tracker = MakeFrequency(opt);
  sim::OnlineKeyedSession session(&cluster, tracker.get());
  EXPECT_FALSE(session.sharded());
  session.Push(w);
  session.Sync();
  EXPECT_EQ(session.epoch_splits(), 0u);
  EXPECT_EQ(serial_tracker->EstimateFrequency(1), tracker->EstimateFrequency(1));
  ExpectSameKeyedTraffic(*serial_tracker, *tracker);
}

TEST(OnlineRank, CheckpointAlignedPushesBitIdenticalToSerial) {
  // Push boundaries cut per-site runs, so bit-identity is pinned on the
  // SAME chunk sequence the serial replay uses (the checkpoint batches).
  for (int k : {1, 4, 12}) {
    Workload w = stream::MakeRankWorkload(
        k, 30000, stream::SiteSchedule::kUniformRandom,
        stream::ValueOrder::kUniformRandom, 14, 17);
    uint64_t query = 1ull << 13;
    auto serial_tracker = MakeRank(Options(k));
    auto serial = sim::ReplayRank(serial_tracker.get(), w, query, 1.5);
    std::vector<uint64_t> bounds = sim::CheckpointCounts(w.size(), 1.5);
    for (int threads : {1, 2, 4, 7}) {
      ParallelCluster cluster(threads);
      auto tracker = MakeRank(Options(k));
      sim::OnlineKeyedSession session(&cluster, tracker.get());
      EXPECT_TRUE(session.sharded());
      auto online = OnlineRankRun(&session, tracker.get(), w, query, bounds);
      ExpectIdentical(serial, online);
      EXPECT_GT(session.epoch_splits(), 0u);
      ExpectSameKeyedTraffic(*serial_tracker, *tracker);
    }
  }
}

TEST(OnlineRank, SortedAndSkewedStreamsMatchSerial) {
  int k = 6;
  for (auto order :
       {stream::ValueOrder::kAscending, stream::ValueOrder::kClustered}) {
    Workload w = stream::MakeRankWorkload(
        k, 20000, stream::SiteSchedule::kSkewedGeometric, order, 12, 29);
    uint64_t query = 1ull << 11;
    auto serial_tracker = MakeRank(Options(k));
    auto serial = sim::ReplayRank(serial_tracker.get(), w, query, 1.5);
    std::vector<uint64_t> bounds = sim::CheckpointCounts(w.size(), 1.5);
    ParallelCluster cluster(4);
    auto tracker = MakeRank(Options(k));
    sim::OnlineKeyedSession session(&cluster, tracker.get());
    auto online = OnlineRankRun(&session, tracker.get(), w, query, bounds);
    ExpectIdentical(serial, online);
  }
}

TEST(OnlineRank, MisalignedPushesMatchSerialWithSameChunks) {
  // Any partition agrees bit-exactly with serial delivery of the SAME
  // chunk sequence — run cuts land at the same stream positions.
  int k = 5;
  Workload w = stream::MakeRankWorkload(
      k, 25000, stream::SiteSchedule::kUniformRandom,
      stream::ValueOrder::kUniformRandom, 13, 23);
  uint64_t query = 1ull << 12;
  auto serial_tracker = MakeRank(Options(k));
  ParallelCluster cluster(4);
  auto tracker = MakeRank(Options(k));
  sim::OnlineKeyedSession session(&cluster, tracker.get());
  size_t pos = 0;
  while (pos < w.size()) {
    size_t len = std::min<size_t>(769, w.size() - pos);
    serial_tracker->ArriveBatch(w.data() + pos, len);
    session.Push(w.data() + pos, len);
    session.Sync();
    EXPECT_EQ(serial_tracker->EstimateRank(query), tracker->EstimateRank(query))
        << "after " << pos + len << " arrivals";
    pos += len;
  }
  ExpectSameKeyedTraffic(*serial_tracker, *tracker);
}

TEST(OnlineRank, MisalignedPushErrorWithinBound) {
  // Across DIFFERENT partitions the batched compactor is distribution-
  // equivalent, not bit-equal — so the cross-partition pin is
  // statistical: the online estimate keeps the protocol's eps n error
  // bound over independent seeds.
  int k = 8;
  uint64_t n = 30000;
  Workload w = stream::MakeRankWorkload(
      k, n, stream::SiteSchedule::kUniformRandom,
      stream::ValueOrder::kUniformRandom, 14, 31);
  uint64_t query = 1ull << 13;
  uint64_t truth = 0;
  for (const auto& a : w) {
    if (a.key < query) ++truth;
  }
  ParallelCluster cluster(3);
  int failures = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto tracker = MakeRank(Options(k, seed, 0.05));
    sim::OnlineKeyedSession session(&cluster, tracker.get());
    size_t pos = 0;
    while (pos < w.size()) {
      size_t len = std::min<size_t>(769, w.size() - pos);
      session.Push(w.data() + pos, len);
      pos += len;
    }
    session.Sync();
    double err = std::abs(tracker->EstimateRank(query) -
                          static_cast<double>(truth));
    if (err > 0.05 * static_cast<double>(n)) ++failures;
  }
  EXPECT_LE(failures, 4);
}

TEST(OnlineRank, PerElementFeedFallsBack) {
  int k = 4;
  Workload w = stream::MakeRankWorkload(
      k, 5000, stream::SiteSchedule::kUniformRandom,
      stream::ValueOrder::kUniformRandom, 12, 37);
  core::TrackerOptions opt = Options(k);
  opt.use_batch_compaction = false;
  auto serial_tracker = MakeRank(opt);
  serial_tracker->ArriveBatch(w.data(), w.size());
  ParallelCluster cluster(2);
  auto tracker = MakeRank(opt);
  sim::OnlineKeyedSession session(&cluster, tracker.get());
  EXPECT_FALSE(session.sharded());
  session.Push(w);
  session.Sync();
  EXPECT_EQ(serial_tracker->EstimateRank(100), tracker->EstimateRank(100));
  ExpectSameKeyedTraffic(*serial_tracker, *tracker);
}

TEST(OnlineThreeWay, ReplayOnlinePushAndSerialAgree) {
  // The ISSUE's headline pin: the SAME workload through all three
  // engines — serial driver, replay cluster, online push — checkpoint by
  // checkpoint, estimates to the ulp plus communication totals.
  int k = 8;
  {
    SiteStream sites = stream::MakeCountSites(
        k, 50000, stream::SiteSchedule::kSkewedGeometric, 47);
    auto serial_tracker = MakeCount(Options(k));
    auto serial = sim::ReplayCountSites(serial_tracker.get(), sites, 1.5);
    ParallelCluster cluster(4);
    auto replay_tracker = MakeCount(Options(k));
    auto replayed =
        cluster.ReplayCountSites(replay_tracker.get(), sites, 1.5);
    auto online_tracker = MakeCount(Options(k));
    sim::OnlineCountSession session(&cluster, online_tracker.get());
    auto online = OnlineCountRun(&session, online_tracker.get(), sites,
                                 sim::CheckpointCounts(sites.size(), 1.5));
    ExpectIdentical(serial, replayed);
    ExpectIdentical(serial, online);
    ExpectSameTraffic(*serial_tracker, *replay_tracker);
    ExpectSameTraffic(*serial_tracker, *online_tracker);
  }
  Workload w = stream::MakeFrequencyWorkload(
      k, 40000, stream::SiteSchedule::kUniformRandom, 3000, 1.1, 47);
  {
    auto serial_tracker = MakeFrequency(Options(k));
    auto serial = sim::ReplayFrequency(serial_tracker.get(), w, 0, 1.5);
    ParallelCluster cluster(4);
    auto replay_tracker = MakeFrequency(Options(k));
    auto replayed = cluster.ReplayFrequency(replay_tracker.get(), w, 0, 1.5);
    auto online_tracker = MakeFrequency(Options(k));
    sim::OnlineKeyedSession session(&cluster, online_tracker.get());
    auto online = OnlineFrequencyRun(&session, online_tracker.get(), w, 0,
                                     sim::CheckpointCounts(w.size(), 1.5));
    ExpectIdentical(serial, replayed);
    ExpectIdentical(serial, online);
    ExpectSameKeyedTraffic(*serial_tracker, *replay_tracker);
    ExpectSameKeyedTraffic(*serial_tracker, *online_tracker);
  }
  {
    uint64_t query = 500;
    auto serial_tracker = MakeRank(Options(k));
    auto serial = sim::ReplayRank(serial_tracker.get(), w, query, 1.5);
    ParallelCluster cluster(4);
    auto replay_tracker = MakeRank(Options(k));
    auto replayed = cluster.ReplayRank(replay_tracker.get(), w, query, 1.5);
    auto online_tracker = MakeRank(Options(k));
    sim::OnlineKeyedSession session(&cluster, online_tracker.get());
    auto online = OnlineRankRun(&session, online_tracker.get(), w, query,
                                sim::CheckpointCounts(w.size(), 1.5));
    ExpectIdentical(serial, replayed);
    ExpectIdentical(serial, online);
    ExpectSameKeyedTraffic(*serial_tracker, *replay_tracker);
    ExpectSameKeyedTraffic(*serial_tracker, *online_tracker);
  }
}

TEST(OnlineEdge, EmptySessionsAndSingleArrivalPushes) {
  int k = 3;
  ParallelCluster cluster(4);
  {
    auto tracker = MakeCount(Options(k));
    sim::OnlineCountSession session(&cluster, tracker.get());
    session.PushSites(nullptr, 0);
    EXPECT_EQ(tracker->EstimateCount(), 0.0);
  }
  {
    // Every push a single arrival: the certifier and the speculation
    // machinery run per arrival, broadcasts and all.
    SiteStream sites = stream::MakeCountSites(
        k, 2000, stream::SiteSchedule::kBursty, 3);
    auto serial_tracker = MakeCount(Options(k));
    serial_tracker->ArriveSites(sites.data(), sites.size());
    auto tracker = MakeCount(Options(k));
    sim::OnlineCountSession session(&cluster, tracker.get());
    for (size_t i = 0; i < sites.size(); ++i) {
      session.PushSites(sites.data() + i, 1);
    }
    EXPECT_EQ(serial_tracker->EstimateCount(), tracker->EstimateCount());
    ExpectSameTraffic(*serial_tracker, *tracker);
  }
  {
    Workload w = stream::MakeRankWorkload(
        k, 2000, stream::SiteSchedule::kUniformRandom,
        stream::ValueOrder::kUniformRandom, 12, 7);
    auto serial_tracker = MakeRank(Options(k));
    auto tracker = MakeRank(Options(k));
    sim::OnlineKeyedSession session(&cluster, tracker.get());
    for (size_t i = 0; i < w.size(); ++i) {
      serial_tracker->ArriveBatch(w.data() + i, 1);
      session.Push(w.data() + i, 1);
    }
    session.Sync();
    EXPECT_EQ(serial_tracker->EstimateRank(100), tracker->EstimateRank(100));
    ExpectSameKeyedTraffic(*serial_tracker, *tracker);
  }
}

// ----------------------------------------------------------- death tests

using ParallelClusterDeathTest = ::testing::Test;

TEST(ParallelClusterDeathTest, OutOfRangeSiteIdAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  int k = 4;
  // In the recorded workload (caught by the planner's validation pass).
  {
    SiteStream sites{0, 1, 9};
    ParallelCluster cluster(2);
    auto tracker = MakeCount(Options(k));
    EXPECT_DEATH(cluster.ReplayCountSites(tracker.get(), sites, 1.5),
                 "out of range");
  }
  // Straight into the tracker batch paths.
  {
    auto tracker = MakeCount(Options(k));
    SiteStream sites{0, 4};
    EXPECT_DEATH(tracker->ArriveSites(sites.data(), sites.size()),
                 "out of range");
  }
  {
    auto tracker = MakeFrequency(Options(k));
    std::vector<sim::Arrival> bad{{0, 1}, {-1, 2}};
    EXPECT_DEATH(tracker->ArriveBatch(bad.data(), bad.size()),
                 "out of range");
  }
  {
    auto tracker = MakeRank(Options(k));
    std::vector<sim::Arrival> bad{{7, 1}};
    EXPECT_DEATH(tracker->ArriveBatch(bad.data(), bad.size()),
                 "out of range");
  }
}

TEST(ParallelClusterDeathTest, BadCheckpointFactorAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ParallelCluster cluster(2);
  auto tracker = MakeCount(Options(2));
  SiteStream sites{0, 1};
  EXPECT_DEATH(cluster.ReplayCountSites(tracker.get(), sites, 1.0),
               "checkpoint_factor");
}

}  // namespace
}  // namespace disttrack
