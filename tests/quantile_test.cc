// Tests for the quantile-from-rank layer (core/quantile.h): the §1.3
// binary-search reduction over every rank tracker.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/core/quantile.h"
#include "disttrack/core/tracking.h"
#include "disttrack/stream/workload.h"

namespace disttrack {
namespace core {
namespace {

using stream::MakeRankWorkload;
using stream::SiteSchedule;
using stream::ValueOrder;

uint64_t ExactQuantile(std::vector<uint64_t> values, double phi) {
  size_t idx = static_cast<size_t>(phi * static_cast<double>(values.size()));
  idx = std::min(idx, values.size() - 1);
  std::nth_element(values.begin(), values.begin() + static_cast<long>(idx),
                   values.end());
  return values[idx];
}

class QuantileTrackerTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(QuantileTrackerTest, QuantilesWithinEpsilonInRank) {
  const double eps = 0.05;
  const int kUniverseBits = 12;
  TrackerOptions o;
  o.num_sites = 8;
  o.epsilon = eps;
  o.seed = 5;
  o.universe_bits = kUniverseBits;
  std::unique_ptr<sim::RankTrackerInterface> tracker;
  ASSERT_TRUE(MakeRankTracker(GetParam(), o, &tracker).ok());

  auto w = MakeRankWorkload(8, 40000, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, kUniverseBits, 7);
  std::vector<uint64_t> values;
  for (const auto& a : w) {
    tracker->Arrive(a.site, a.key);
    values.push_back(a.key);
  }
  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    uint64_t answer =
        QuantileFromRank(*tracker, phi, 1ull << kUniverseBits);
    // Judge the answer by its exact rank: it must land within ~2 eps n of
    // phi n (eps from the tracker plus search slack on a discrete domain).
    double rank = static_cast<double>(
        std::lower_bound(sorted.begin(), sorted.end(), answer) -
        sorted.begin());
    EXPECT_NEAR(rank, phi * static_cast<double>(values.size()),
                2.5 * eps * static_cast<double>(values.size()) + 16)
        << "phi " << phi << " algo " << AlgorithmName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, QuantileTrackerTest,
                         ::testing::Values(Algorithm::kDeterministic,
                                           Algorithm::kRandomized,
                                           Algorithm::kSampling),
                         [](const ::testing::TestParamInfo<Algorithm>& i) {
                           return AlgorithmName(i.param);
                         });

TEST(QuantileHelperTest, QuantilesFromRankBatch) {
  TrackerOptions o;
  o.num_sites = 4;
  o.epsilon = 0.1;
  o.seed = 3;
  std::unique_ptr<sim::RankTrackerInterface> tracker;
  ASSERT_TRUE(MakeRankTracker(Algorithm::kRandomized, o, &tracker).ok());
  for (uint64_t i = 0; i < 10000; ++i) {
    tracker->Arrive(static_cast<int>(i % 4), i % 1000);
  }
  auto answers =
      QuantilesFromRank(*tracker, {0.25, 0.5, 0.75}, 1024);
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_LE(answers[0], answers[1]);
  EXPECT_LE(answers[1], answers[2]);
  EXPECT_NEAR(static_cast<double>(answers[1]), 500.0, 150.0);
}

TEST(QuantileHelperTest, ExtremesAndDegenerates) {
  TrackerOptions o;
  o.num_sites = 2;
  o.epsilon = 0.1;
  std::unique_ptr<sim::RankTrackerInterface> tracker;
  ASSERT_TRUE(MakeRankTracker(Algorithm::kDeterministic, o, &tracker).ok());
  for (int i = 0; i < 1000; ++i) tracker->Arrive(i % 2, 100);
  // All mass at value 100: every quantile is 100.
  EXPECT_EQ(QuantileFromRank(*tracker, 0.5, 4096), 100u);
  EXPECT_EQ(QuantileFromRank(*tracker, 0.99, 4096), 100u);
  // Clamping and zero-universe safety.
  EXPECT_EQ(QuantileFromRank(*tracker, -1.0, 4096), 0u);
  EXPECT_EQ(QuantileFromRank(*tracker, 2.0, 4096), 100u);
  EXPECT_EQ(QuantileFromRank(*tracker, 0.5, 0), 0u);
}

TEST(QuantileHelperTest, FrequencyFromRankReduction) {
  // §1.3: rank structures answer frequencies via rank(x+1) - rank(x).
  TrackerOptions o;
  o.num_sites = 4;
  o.epsilon = 0.05;
  o.seed = 11;
  std::unique_ptr<sim::RankTrackerInterface> tracker;
  ASSERT_TRUE(MakeRankTracker(Algorithm::kRandomized, o, &tracker).ok());
  // 40% of mass at value 7.
  for (uint64_t i = 0; i < 30000; ++i) {
    uint64_t v = (i % 10) < 4 ? 7 : 100 + (i % 50);
    tracker->Arrive(static_cast<int>(i % 4), v);
  }
  EXPECT_NEAR(FrequencyFromRank(*tracker, 7), 12000.0, 2 * 0.05 * 30000);
  EXPECT_NEAR(FrequencyFromRank(*tracker, 8), 0.0, 2 * 0.05 * 30000);
}

}  // namespace
}  // namespace core
}  // namespace disttrack
