// Tests for the rank-summary substrate: GK [12], the compactor ("algorithm
// A" of §4), Bernoulli samples, and the reservoir — in particular the three
// properties §4 needs from A: unbiasedness, variance (εm)², small space.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/common/random.h"
#include "disttrack/summaries/bernoulli_summary.h"
#include "disttrack/summaries/compactor_summary.h"
#include "disttrack/summaries/gk_summary.h"
#include "disttrack/summaries/reservoir.h"
#include "test_util.h"

namespace disttrack {
namespace summaries {
namespace {

uint64_t ExactRankOf(const std::vector<uint64_t>& data, uint64_t x) {
  uint64_t below = 0;
  for (uint64_t v : data) {
    if (v < x) ++below;
  }
  return below;
}

std::vector<uint64_t> RandomData(size_t n, uint64_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> data(n);
  for (auto& v : data) v = rng.UniformU64(universe);
  return data;
}

TEST(GKSummaryTest, ExactOnTinyStream) {
  GKSummary gk(0.1);
  for (uint64_t v : {5ull, 1ull, 9ull, 3ull}) gk.Insert(v);
  EXPECT_EQ(gk.n(), 4u);
  EXPECT_LE(gk.EstimateRank(0), 0u);
  EXPECT_EQ(gk.EstimateRank(100), 4u);
}

TEST(GKSummaryTest, RankWithinEpsilonUniform) {
  const double eps = 0.01;
  GKSummary gk(eps);
  auto data = RandomData(50000, 1 << 20, 3);
  for (uint64_t v : data) gk.Insert(v);
  for (uint64_t q = 0; q <= 10; ++q) {
    uint64_t x = q * ((1 << 20) / 10);
    double err = std::fabs(static_cast<double>(gk.EstimateRank(x)) -
                           static_cast<double>(ExactRankOf(data, x)));
    EXPECT_LE(err, eps * static_cast<double>(data.size()) + 1)
        << "query " << x;
  }
}

TEST(GKSummaryTest, RankWithinEpsilonSorted) {
  const double eps = 0.02;
  GKSummary gk(eps);
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 30000; ++i) data.push_back(i);
  for (uint64_t v : data) gk.Insert(v);
  for (uint64_t x : {1000ull, 15000ull, 29999ull}) {
    double err = std::fabs(static_cast<double>(gk.EstimateRank(x)) -
                           static_cast<double>(x));
    EXPECT_LE(err, eps * 30000 + 1);
  }
}

TEST(GKSummaryTest, RankWithinEpsilonReverseSorted) {
  const double eps = 0.02;
  GKSummary gk(eps);
  const uint64_t kN = 30000;
  for (uint64_t i = 0; i < kN; ++i) gk.Insert(kN - 1 - i);
  double err = std::fabs(static_cast<double>(gk.EstimateRank(kN / 2)) -
                         static_cast<double>(kN / 2));
  EXPECT_LE(err, eps * kN + 1);
}

TEST(GKSummaryTest, SpaceIsSublinear) {
  GKSummary gk(0.01);
  auto data = RandomData(100000, 1 << 24, 7);
  for (uint64_t v : data) gk.Insert(v);
  // O(1/eps * log(eps n)) tuples: generous cap at 40/eps.
  EXPECT_LE(gk.NumTuples(), static_cast<size_t>(40.0 / 0.01));
  EXPECT_LT(gk.NumTuples(), data.size() / 10);
}

TEST(GKSummaryTest, QuantileWithinEpsilon) {
  const double eps = 0.02;
  GKSummary gk(eps);
  auto data = RandomData(40000, 1 << 20, 11);
  for (uint64_t v : data) gk.Insert(v);
  std::vector<uint64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    uint64_t answer = gk.Quantile(phi);
    double rank = static_cast<double>(ExactRankOf(data, answer));
    EXPECT_NEAR(rank, phi * 40000, 2 * eps * 40000 + 1) << "phi " << phi;
  }
}

TEST(GKSummaryTest, DuplicateHeavyValue) {
  GKSummary gk(0.05);
  for (int i = 0; i < 10000; ++i) gk.Insert(500);
  for (int i = 0; i < 100; ++i) gk.Insert(1000);
  EXPECT_NEAR(static_cast<double>(gk.EstimateRank(501)), 10000.0, 505.0);
  EXPECT_LE(gk.EstimateRank(500), static_cast<uint64_t>(0.05 * 10100 + 1));
}

TEST(GKSummaryTest, ClearResets) {
  GKSummary gk(0.1);
  gk.Insert(1);
  gk.Clear();
  EXPECT_EQ(gk.n(), 0u);
  EXPECT_EQ(gk.NumTuples(), 0u);
}

TEST(CompactorTest, ExactWhileInBuffer) {
  CompactorSummary c(0.5, 3);
  for (uint64_t v : {4ull, 2ull, 9ull}) c.Insert(v);
  EXPECT_DOUBLE_EQ(c.EstimateRank(5), 2.0);
  EXPECT_DOUBLE_EQ(c.EstimateRank(1), 0.0);
  EXPECT_EQ(c.WeightTotal(), 3u);
}

TEST(CompactorTest, WeightIsConserved) {
  CompactorSummary c(0.05, 5);
  for (uint64_t i = 0; i < 12345; ++i) c.Insert(i * 7919 % 100000);
  EXPECT_EQ(c.WeightTotal(), 12345u);
}

TEST(CompactorTest, RankIsMonotoneInQuery) {
  CompactorSummary c(0.02, 7);
  auto data = RandomData(20000, 1 << 16, 13);
  for (uint64_t v : data) c.Insert(v);
  double prev = -1;
  for (uint64_t x = 0; x <= (1 << 16); x += 1 << 11) {
    double r = c.EstimateRank(x);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(CompactorTest, UnbiasedOverTrials) {
  // Property 1 of algorithm A: E[EstimateRank(x)] = rank(x).
  const size_t kN = 4096;
  auto data = RandomData(kN, 1 << 16, 17);
  uint64_t x = 1 << 15;
  double truth = static_cast<double>(ExactRankOf(data, x));
  const double eps = 0.1;
  auto errors = testing_util::CollectErrors(2000, [&](uint64_t seed) {
    CompactorSummary c(eps, seed);
    for (uint64_t v : data) c.Insert(v);
    return c.EstimateRank(x) - truth;
  });
  // |mean| should be ~ std/sqrt(trials) <= eps*n/sqrt(2000) ~ 9.
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 30.0);
}

TEST(CompactorTest, VarianceWithinEpsSquared) {
  // Property 2 of algorithm A: Var <= (eps * m)².
  const size_t kN = 8192;
  auto data = RandomData(kN, 1 << 16, 19);
  uint64_t x = 1 << 15;
  for (double eps : {0.05, 0.1, 0.2}) {
    auto errors = testing_util::CollectErrors(600, [&](uint64_t seed) {
      CompactorSummary c(eps, seed ^ 0xABCD);
      for (uint64_t v : data) c.Insert(v);
      return c.EstimateRank(x) -
             static_cast<double>(ExactRankOf(data, x));
    });
    double bound = eps * static_cast<double>(kN);
    EXPECT_LE(testing_util::VarianceOf(errors), bound * bound)
        << "eps " << eps;
  }
}

TEST(CompactorTest, SpaceIsLogarithmic) {
  const double eps = 0.01;
  CompactorSummary c(eps, 23);
  for (uint64_t i = 0; i < 200000; ++i) c.Insert(i * 2654435761u % 1000000);
  // s * (#levels): s = 2/eps = 200, levels ~ log2(eps m) = 11.
  EXPECT_LE(c.SpaceWords(), static_cast<uint64_t>(6.0 / eps *
                                                  std::log2(eps * 200000)));
  EXPECT_LT(c.SpaceWords(), 200000u / 10);
}

TEST(CompactorTest, MergePreservesWeightAndAccuracy) {
  const double eps = 0.05;
  auto data1 = RandomData(10000, 1 << 16, 29);
  auto data2 = RandomData(15000, 1 << 16, 31);
  CompactorSummary a(eps, 101), b(eps, 103);
  for (uint64_t v : data1) a.Insert(v);
  for (uint64_t v : data2) b.Insert(v);
  a.MergeFrom(b);
  EXPECT_EQ(a.WeightTotal(), 25000u);
  std::vector<uint64_t> all = data1;
  all.insert(all.end(), data2.begin(), data2.end());
  uint64_t x = 1 << 15;
  double err = std::fabs(a.EstimateRank(x) -
                         static_cast<double>(ExactRankOf(all, x)));
  // Generous: 4 eps m (merge at most doubles the variance budget).
  EXPECT_LE(err, 4 * eps * 25000);
}

TEST(CompactorTest, QuantileRoundTrip) {
  CompactorSummary c(0.02, 37);
  auto data = RandomData(30000, 1 << 20, 41);
  for (uint64_t v : data) c.Insert(v);
  uint64_t med = c.Quantile(0.5);
  double rank = static_cast<double>(ExactRankOf(data, med));
  EXPECT_NEAR(rank, 15000.0, 0.1 * 30000);
}

TEST(CompactorTest, EpsGreaterThanOneIsTiny) {
  CompactorSummary c(1.0, 43);
  for (uint64_t i = 0; i < 1000; ++i) c.Insert(i);
  EXPECT_EQ(c.WeightTotal(), 1000u);
  EXPECT_LE(c.buffer_capacity(), 4u);
  // Even with the coarsest parameter the estimate is within eps*m = m.
  EXPECT_LE(std::fabs(c.EstimateRank(500) - 500.0), 1000.0);
}

TEST(CompactorTest, SerializedWordsCountsItems) {
  CompactorSummary c(0.5, 47);
  for (uint64_t i = 0; i < 100; ++i) c.Insert(i);
  uint64_t items = 0;
  for (const auto& [v, w] : c.Items()) {
    (void)v;
    (void)w;
    ++items;
  }
  EXPECT_EQ(c.SerializedWords(),
            items + static_cast<uint64_t>(c.NumLevels()) + 1);
}

TEST(CompactorTest, ClearResets) {
  CompactorSummary c(0.1, 51);
  c.Insert(5);
  c.Clear();
  EXPECT_EQ(c.m(), 0u);
  EXPECT_EQ(c.WeightTotal(), 0u);
  EXPECT_DOUBLE_EQ(c.EstimateRank(100), 0.0);
}

TEST(CompactorTest, QuantileOnWeightZeroLevelsReturnsZero) {
  // A summary can hold only weight-0 (empty) levels: freshly constructed,
  // Reset() (which retains emptied levels for reuse), or merged from such
  // summaries (MergeFrom resizes the level vector even when every source
  // buffer is empty). Quantile must answer 0 without searching any level.
  CompactorSummary empty(0.1, 61);
  EXPECT_EQ(empty.Quantile(0.5), 0u);

  CompactorSummary c(0.1, 63);
  for (uint64_t i = 0; i < 1000; ++i) c.Insert(i);  // grows several levels
  ASSERT_GT(c.NumLevels(), 1);
  c.Reset(99);
  EXPECT_EQ(c.m(), 0u);
  EXPECT_EQ(c.WeightTotal(), 0u);
  EXPECT_EQ(c.Quantile(0.0), 0u);
  EXPECT_EQ(c.Quantile(0.5), 0u);
  EXPECT_EQ(c.Quantile(1.0), 0u);

  // The post-merge edge: merging the reset (multi-empty-level) summary
  // leaves the destination holding only weight-0 levels too.
  CompactorSummary merged(0.1, 65);
  merged.MergeFrom(c);
  merged.MergeFrom(empty);
  EXPECT_EQ(merged.Quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(merged.EstimateRank(123), 0.0);
  EXPECT_EQ(merged.WeightTotal(), 0u);

  // And the summary recovers once data arrives.
  merged.Insert(42);
  EXPECT_EQ(merged.Quantile(0.5), 42u);
}

TEST(CompactorTest, ResetRetainsGuaranteesOnReuse) {
  // Node pooling reuses summaries via Reset(); a reused summary must give
  // the same unbiased estimates as a fresh one.
  const double eps = 0.05;
  auto data = RandomData(20000, 1 << 16, 67);
  uint64_t x = 1 << 15;
  uint64_t truth = ExactRankOf(data, x);
  CompactorSummary c(eps, 71);
  for (uint64_t v : data) c.Insert(v);  // first life
  c.Reset(73);
  for (uint64_t v : data) c.Insert(v);  // reused life
  EXPECT_EQ(c.m(), 20000u);
  EXPECT_EQ(c.WeightTotal(), 20000u);
  double err = std::fabs(c.EstimateRank(x) - static_cast<double>(truth));
  EXPECT_LE(err, 4 * eps * 20000);
}

TEST(BernoulliSummaryTest, PEqualsOneIsExact) {
  BernoulliSampleSummary s(1.0, 3);
  for (uint64_t v : {1ull, 5ull, 5ull, 9ull}) s.Insert(v);
  EXPECT_DOUBLE_EQ(s.EstimateCount(), 4.0);
  EXPECT_DOUBLE_EQ(s.EstimateRank(6), 3.0);
  EXPECT_DOUBLE_EQ(s.EstimateFrequency(5), 2.0);
}

TEST(BernoulliSummaryTest, UnbiasedCount) {
  const double p = 0.05;
  const uint64_t kN = 2000;
  auto errors = testing_util::CollectErrors(2000, [&](uint64_t seed) {
    BernoulliSampleSummary s(p, seed);
    for (uint64_t i = 0; i < kN; ++i) s.Insert(i);
    return s.EstimateCount() - static_cast<double>(kN);
  });
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 10.0);
  // Var = n (1-p)/p = 38000.
  EXPECT_NEAR(testing_util::VarianceOf(errors), kN * (1 - p) / p, 8000.0);
}

TEST(BernoulliSummaryTest, SampleSizeConcentrates) {
  BernoulliSampleSummary s(0.1, 7);
  for (uint64_t i = 0; i < 50000; ++i) s.Insert(i);
  EXPECT_NEAR(static_cast<double>(s.SampleSize()), 5000.0, 400.0);
}

TEST(ReservoirTest, HoldsEverythingUnderCapacity) {
  ReservoirSample r(100, 5);
  for (uint64_t i = 0; i < 50; ++i) r.Insert(i);
  EXPECT_EQ(r.sample().size(), 50u);
  EXPECT_DOUBLE_EQ(r.EstimateRank(25), 25.0);
}

TEST(ReservoirTest, CapacityIsRespected) {
  ReservoirSample r(64, 7);
  for (uint64_t i = 0; i < 10000; ++i) r.Insert(i);
  EXPECT_EQ(r.sample().size(), 64u);
  EXPECT_EQ(r.n(), 10000u);
}

TEST(ReservoirTest, UniformInclusion) {
  // Every element survives with probability capacity/n.
  const size_t kCap = 50;
  const uint64_t kN = 1000;
  std::vector<int> hits(kN, 0);
  for (uint64_t seed = 0; seed < 2000; ++seed) {
    ReservoirSample r(kCap, seed);
    for (uint64_t i = 0; i < kN; ++i) r.Insert(i);
    for (uint64_t v : r.sample()) ++hits[v];
  }
  double expect = 2000.0 * kCap / static_cast<double>(kN);  // = 100
  int lo = 0, hi = 0;
  for (int h : hits) {
    if (h < expect * 0.5) ++lo;
    if (h > expect * 1.5) ++hi;
  }
  EXPECT_LT(lo + hi, 20);  // at most 2% of elements far from expectation
}

TEST(ReservoirTest, RankEstimateReasonable) {
  ReservoirSample r(2000, 11);
  Rng rng(13);
  const uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) r.Insert(rng.UniformU64(1 << 16));
  // rank of midpoint ~ n/2; sampling std ~ n/(2 sqrt(s)) ~ 1120.
  EXPECT_NEAR(r.EstimateRank(1 << 15), kN / 2.0, 6000.0);
}

TEST(ReservoirTest, QuantileReasonable) {
  ReservoirSample r(4000, 17);
  Rng rng(19);
  for (uint64_t i = 0; i < 200000; ++i) r.Insert(rng.UniformU64(1000000));
  EXPECT_NEAR(static_cast<double>(r.Quantile(0.5)), 500000.0, 50000.0);
}

}  // namespace
}  // namespace summaries
}  // namespace disttrack
