// Tests for disttrack/rank: the deterministic dyadic tracker [29] and the
// randomized tracker of §4 (Theorem 4.1 unbiasedness, coverage, space, and
// the √k communication advantage).

#include <cmath>

#include <gtest/gtest.h>

#include "disttrack/rank/deterministic_rank.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace rank {
namespace {

using stream::ExactRank;
using stream::MakeRankWorkload;
using stream::SiteSchedule;
using stream::ValueOrder;

TEST(DeterministicRankTest, OptionsValidate) {
  DeterministicRankOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.universe_bits = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.universe_bits = 60;
  EXPECT_FALSE(o.Validate().ok());
  o = DeterministicRankOptions{};
  o.epsilon = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(DeterministicRankTest, RanksWithinEpsilonUniform) {
  DeterministicRankOptions o;
  o.num_sites = 4;
  o.epsilon = 0.1;
  o.universe_bits = 10;
  DeterministicRankTracker tracker(o);
  auto w = MakeRankWorkload(4, 30000, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, 10, 3);
  for (const auto& a : w) tracker.Arrive(a.site, a.key);
  double bound = o.epsilon * static_cast<double>(w.size());
  for (uint64_t q = 0; q <= 8; ++q) {
    uint64_t x = q * 128;
    double err = std::fabs(tracker.EstimateRank(x) -
                           static_cast<double>(ExactRank(w, x)));
    ASSERT_LE(err, bound + 1e-9) << "x " << x;
  }
}

TEST(DeterministicRankTest, RanksWithinEpsilonSortedAndClustered) {
  for (auto order : {ValueOrder::kAscending, ValueOrder::kDescending,
                     ValueOrder::kClustered}) {
    DeterministicRankOptions o;
    o.num_sites = 4;
    o.epsilon = 0.1;
    o.universe_bits = 10;
    DeterministicRankTracker tracker(o);
    auto w = MakeRankWorkload(4, 20000, SiteSchedule::kRoundRobin, order, 10,
                              5);
    for (const auto& a : w) tracker.Arrive(a.site, a.key);
    double bound = o.epsilon * static_cast<double>(w.size());
    for (uint64_t x : {256ull, 512ull, 768ull}) {
      double err = std::fabs(tracker.EstimateRank(x) -
                             static_cast<double>(ExactRank(w, x)));
      ASSERT_LE(err, bound + 1e-9)
          << "order " << static_cast<int>(order) << " x " << x;
    }
  }
}

TEST(DeterministicRankTest, GuaranteeHoldsMidStream) {
  DeterministicRankOptions o;
  o.num_sites = 4;
  o.epsilon = 0.15;
  o.universe_bits = 8;
  DeterministicRankTracker tracker(o);
  auto w = MakeRankWorkload(4, 20000, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, 8, 7);
  uint64_t n = 0;
  std::vector<uint64_t> seen;
  for (const auto& a : w) {
    tracker.Arrive(a.site, a.key);
    seen.push_back(a.key);
    ++n;
    if (n % 4999 == 0) {
      uint64_t x = 128;
      uint64_t truth = 0;
      for (uint64_t v : seen) {
        if (v < x) ++truth;
      }
      double err =
          std::fabs(tracker.EstimateRank(x) - static_cast<double>(truth));
      ASSERT_LE(err, o.epsilon * static_cast<double>(n) + 1e-9)
          << "at n " << n;
    }
  }
}

TEST(RandomizedRankTest, OptionsValidate) {
  RandomizedRankOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.epsilon = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = RandomizedRankOptions{};
  o.confidence_factor = 0.1;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(RandomizedRankTest, ExactWhilePIsOne) {
  RandomizedRankOptions o;
  o.num_sites = 16;
  o.epsilon = 0.1;
  o.confidence_factor = 8;
  RandomizedRankTracker tracker(o);
  // p stays 1 while εn̄ <= c√k, i.e. n̄ <= 320.
  for (uint64_t i = 0; i < 300; ++i) {
    tracker.Arrive(static_cast<int>(i % 16), i);
    ASSERT_DOUBLE_EQ(tracker.p(), 1.0);
  }
  EXPECT_DOUBLE_EQ(tracker.EstimateRank(150), 150.0);
  EXPECT_DOUBLE_EQ(tracker.EstimateRank(1000), 300.0);
}

TEST(RandomizedRankTest, UnbiasedAtFixedTime) {
  const uint64_t kN = 30000;
  auto w = MakeRankWorkload(8, kN, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, 16, 11);
  const uint64_t x = 1 << 15;
  double truth = static_cast<double>(ExactRank(w, x));
  auto errors = testing_util::CollectErrors(250, [&](uint64_t seed) {
    RandomizedRankOptions o;
    o.num_sites = 8;
    o.epsilon = 0.05;
    o.seed = seed;
    RandomizedRankTracker tracker(o);
    for (const auto& a : w) tracker.Arrive(a.site, a.key);
    return tracker.EstimateRank(x) - truth;
  });
  // std <= eps*n/c-ish ~ 190; mean of 250 trials ~ 12.
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 50.0);
}

TEST(RandomizedRankTest, CoverageAtLeastNinety) {
  const uint64_t kN = 30000;
  const double eps = 0.05;
  auto w = MakeRankWorkload(8, kN, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, 16, 13);
  for (uint64_t x : {1ull << 14, 1ull << 15, 3ull << 14}) {
    double truth = static_cast<double>(ExactRank(w, x));
    auto errors = testing_util::CollectErrors(200, [&](uint64_t seed) {
      RandomizedRankOptions o;
      o.num_sites = 8;
      o.epsilon = eps;
      o.seed = seed;
      RandomizedRankTracker tracker(o);
      for (const auto& a : w) tracker.Arrive(a.site, a.key);
      return tracker.EstimateRank(x) - truth;
    });
    EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9)
        << "x " << x;
  }
}

TEST(RandomizedRankTest, CoverageUnderSortedAdversary) {
  // Sorted arrival order stresses the block/tree structure of algorithm C.
  const uint64_t kN = 25000;
  const double eps = 0.05;
  auto w = MakeRankWorkload(8, kN, SiteSchedule::kRoundRobin,
                            ValueOrder::kAscending, 16, 17);
  const uint64_t x = 1 << 15;
  double truth = static_cast<double>(ExactRank(w, x));
  auto errors = testing_util::CollectErrors(150, [&](uint64_t seed) {
    RandomizedRankOptions o;
    o.num_sites = 8;
    o.epsilon = eps;
    o.seed = seed;
    RandomizedRankTracker tracker(o);
    for (const auto& a : w) tracker.Arrive(a.site, a.key);
    return tracker.EstimateRank(x) - truth;
  });
  EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9);
}

TEST(RandomizedRankTest, CoverageUnderSingleSiteSkew) {
  const uint64_t kN = 25000;
  const double eps = 0.05;
  auto w = MakeRankWorkload(16, kN, SiteSchedule::kSingleSite,
                            ValueOrder::kUniformRandom, 16, 19);
  const uint64_t x = 1 << 15;
  double truth = static_cast<double>(ExactRank(w, x));
  auto errors = testing_util::CollectErrors(150, [&](uint64_t seed) {
    RandomizedRankOptions o;
    o.num_sites = 16;
    o.epsilon = eps;
    o.seed = seed;
    RandomizedRankTracker tracker(o);
    for (const auto& a : w) tracker.Arrive(a.site, a.key);
    return tracker.EstimateRank(x) - truth;
  });
  EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9);
}

TEST(RandomizedRankTest, EstimateIsMonotoneInQuery) {
  RandomizedRankOptions o;
  o.num_sites = 8;
  o.epsilon = 0.05;
  o.seed = 23;
  RandomizedRankTracker tracker(o);
  auto w = MakeRankWorkload(8, 40000, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, 16, 23);
  for (const auto& a : w) tracker.Arrive(a.site, a.key);
  double prev = -1;
  for (uint64_t x = 0; x <= (1 << 16); x += 1 << 12) {
    double r = tracker.EstimateRank(x);
    ASSERT_GE(r, prev);
    prev = r;
  }
}

TEST(RandomizedRankTest, SpaceStaysSublinear) {
  RandomizedRankOptions o;
  o.num_sites = 16;
  o.epsilon = 0.01;
  o.seed = 29;
  RandomizedRankTracker tracker(o);
  auto w = MakeRankWorkload(16, 1 << 18, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, 20, 29);
  for (const auto& a : w) tracker.Arrive(a.site, a.key);
  // Theorem 4.1's per-site space is O(c/(ε√k) · polylog); with c = 8,
  // 1/(ε√k) = 25 and polylog ~ 25 the budget is a few thousand words —
  // grant that, and demand clear sublinearity in the per-site stream.
  uint64_t per_site_stream = (1 << 18) / 16;
  EXPECT_LT(tracker.space().MaxPeak(), per_site_stream / 2);
  EXPECT_LT(static_cast<double>(tracker.space().MaxPeak()),
            8.0 * 25.0 * 32.0);
}

TEST(RandomizedRankTest, TreeParametersTrackRounds) {
  RandomizedRankOptions o;
  o.num_sites = 16;
  o.epsilon = 0.01;
  o.seed = 31;
  RandomizedRankTracker tracker(o);
  for (uint64_t i = 0; i < 200000; ++i) {
    tracker.Arrive(static_cast<int>(i % 16), i % 1024);
  }
  EXPECT_GT(tracker.rounds(), 10u);
  EXPECT_GT(tracker.height(), 0);
  EXPECT_GT(tracker.block_size(), 1u);
  EXPECT_LT(tracker.p(), 1.0);
}

TEST(RandomizedRankTest, CommunicationBeatsDeterministicAtLargeK) {
  const int k = 32;
  const double eps = 0.05;
  auto w = MakeRankWorkload(k, 1 << 17, SiteSchedule::kRoundRobin,
                            ValueOrder::kUniformRandom, 10, 37);

  DeterministicRankOptions det;
  det.num_sites = k;
  det.epsilon = eps;
  det.universe_bits = 10;
  DeterministicRankTracker det_tracker(det);
  for (const auto& a : w) det_tracker.Arrive(a.site, a.key);

  RandomizedRankOptions rnd;
  rnd.num_sites = k;
  rnd.epsilon = eps;
  rnd.seed = 41;
  RandomizedRankTracker rnd_tracker(rnd);
  for (const auto& a : w) rnd_tracker.Arrive(a.site, a.key);

  EXPECT_GT(det_tracker.meter().TotalWords(),
            rnd_tracker.meter().TotalWords());
}

TEST(RandomizedRankTest, ContinuousCheckpointsMostlyCovered) {
  RandomizedRankOptions o;
  o.num_sites = 8;
  o.epsilon = 0.05;
  o.seed = 43;
  RandomizedRankTracker tracker(o);
  auto w = MakeRankWorkload(8, 150000, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, 16, 47);
  auto checkpoints = sim::ReplayRank(&tracker, w, 1 << 15, 1.4);
  int misses = 0, counted = 0;
  for (const auto& c : checkpoints) {
    if (c.n < 2000) continue;
    ++counted;
    if (std::fabs(c.estimate - c.truth) > 0.05 * static_cast<double>(c.n)) {
      ++misses;
    }
  }
  ASSERT_GT(counted, 5);
  EXPECT_LE(misses, counted / 5);
}

TEST(RandomizedRankTest, DuplicateValuesHandled) {
  RandomizedRankOptions o;
  o.num_sites = 4;
  o.epsilon = 0.1;
  o.seed = 53;
  RandomizedRankTracker tracker(o);
  for (int i = 0; i < 30000; ++i) {
    tracker.Arrive(i % 4, static_cast<uint64_t>(i % 3));
  }
  // Values {0,1,2} each 10000 times: rank(2) = 20000 within eps*n.
  EXPECT_NEAR(tracker.EstimateRank(2), 20000.0, 0.1 * 30000);
  EXPECT_NEAR(tracker.EstimateRank(3), 30000.0, 0.1 * 30000);
}

}  // namespace
}  // namespace rank
}  // namespace disttrack
