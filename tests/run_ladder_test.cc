// Unit tier for summaries/run_ladder.h — the shared run-merge ladder the
// rank tracker's compactor tree consumes through borrowed views. The
// contract under test: every cursor sees every appended element exactly
// once, views are whole ascending runs (merges never cross a position a
// cursor still needs), fully-consumed runs are trimmed, and the append
// fast paths (extend-in-place, buffer handoff) preserve all of it.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/common/random.h"
#include "disttrack/summaries/run_ladder.h"

namespace disttrack {
namespace summaries {
namespace {

std::vector<uint64_t> Flatten(const std::vector<RunView>& views) {
  std::vector<uint64_t> out;
  for (const RunView& v : views) {
    out.insert(out.end(), v.data, v.data + v.size);
  }
  return out;
}

TEST(RunLadderTest, AppendPullRoundTrip) {
  RunLadder ladder;
  ladder.Reset(1);
  std::vector<uint64_t> a{1, 5, 9};
  std::vector<uint64_t> b{2, 2, 7};
  ladder.AppendSortedRun(a.data(), a.size());
  ladder.Consolidate();
  ladder.AppendSortedRun(b.data(), b.size());
  ladder.Consolidate();
  EXPECT_EQ(ladder.pending(0), 6u);
  EXPECT_EQ(ladder.end(), 6u);

  std::vector<RunView> views;
  size_t total = ladder.Pull(0, &views);
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(ladder.pending(0), 0u);
  auto flat = Flatten(views);
  std::sort(flat.begin(), flat.end());
  EXPECT_EQ(flat, (std::vector<uint64_t>{1, 2, 2, 5, 7, 9}));

  // Nothing pending: an immediate re-pull returns no views.
  EXPECT_EQ(ladder.Pull(0, &views), 0u);
  EXPECT_TRUE(views.empty());
}

TEST(RunLadderTest, ViewsAreAscendingRunsAndFewPerGap) {
  RunLadder ladder;
  ladder.Reset(2);
  Rng rng(7);
  std::vector<uint64_t> run;
  for (int r = 0; r < 64; ++r) {
    run.clear();
    uint64_t len = 1 + rng.UniformU64(40);
    for (uint64_t i = 0; i < len; ++i) run.push_back(rng.UniformU64(1 << 20));
    std::sort(run.begin(), run.end());
    ladder.AppendSortedRun(run.data(), run.size());
    ladder.Consolidate();
  }
  std::vector<RunView> views;
  ladder.Pull(0, &views);
  // Cursor 1 never pulled, so it pins exactly one boundary (its start);
  // consolidation on pull leaves one run per inter-cursor gap.
  EXPECT_LE(views.size(), 2u);
  for (const RunView& v : views) {
    EXPECT_TRUE(std::is_sorted(v.data, v.data + v.size));
  }
}

TEST(RunLadderTest, EveryCursorSeesEveryElementOnceDifferential) {
  const size_t kCursors = 3;
  RunLadder ladder;
  ladder.Reset(kCursors);
  Rng rng(99);
  std::map<uint64_t, int> appended;
  std::map<uint64_t, int> pulled[kCursors];
  uint64_t pulled_total[kCursors] = {0, 0, 0};
  std::vector<uint64_t> run;
  std::vector<RunView> views;
  for (int step = 0; step < 400; ++step) {
    if (rng.UniformU64(10) < 7) {
      run.clear();
      uint64_t len = 1 + rng.UniformU64(17);
      for (uint64_t i = 0; i < len; ++i) {
        uint64_t v = rng.UniformU64(1 << 16);
        run.push_back(v);
      }
      std::sort(run.begin(), run.end());
      for (uint64_t v : run) ++appended[v];
      if (rng.UniformU64(2) == 0) {
        ladder.AppendSortedRun(run.data(), run.size());
      } else {
        std::vector<uint64_t> moved = run;
        ladder.AppendSortedVector(&moved);
        EXPECT_TRUE(moved.empty());
      }
    } else if (rng.UniformU64(10) < 9) {
      size_t c = rng.UniformU64(kCursors);
      uint64_t expect = ladder.pending(c);
      uint64_t got = ladder.Pull(c, &views);
      EXPECT_EQ(got, expect);
      pulled_total[c] += got;
      for (const RunView& v : views) {
        EXPECT_TRUE(std::is_sorted(v.data, v.data + v.size));
        for (size_t i = 0; i < v.size; ++i) ++pulled[c][v.data[i]];
      }
    }
    ladder.Consolidate();
  }
  for (size_t c = 0; c < kCursors; ++c) {
    uint64_t got = ladder.Pull(c, &views);
    pulled_total[c] += got;
    for (const RunView& v : views) {
      for (size_t i = 0; i < v.size; ++i) ++pulled[c][v.data[i]];
    }
    EXPECT_EQ(pulled_total[c], ladder.end());
    EXPECT_EQ(pulled[c], appended) << "cursor " << c;
  }
}

TEST(RunLadderTest, TrimRecyclesFullyConsumedRuns) {
  RunLadder ladder;
  ladder.Reset(2);
  std::vector<uint64_t> run(100);
  for (size_t i = 0; i < run.size(); ++i) run[i] = i;
  ladder.AppendSortedRun(run.data(), run.size());
  ladder.Consolidate();
  EXPECT_EQ(ladder.held(), 100u);
  std::vector<RunView> views;
  ladder.Pull(0, &views);
  // Cursor 1 still needs the run: nothing may be trimmed yet.
  ladder.Consolidate();
  EXPECT_EQ(ladder.held(), 100u);
  ladder.Pull(1, &views);
  ladder.Consolidate();
  EXPECT_EQ(ladder.held(), 0u);
  EXPECT_EQ(ladder.run_count(), 0u);
}

TEST(RunLadderTest, AscendingSingletonsExtendInPlace) {
  RunLadder ladder;
  ladder.Reset(1);
  std::vector<RunView> views;
  ladder.Pull(0, &views);  // park the cursor at end once
  for (uint64_t v = 0; v < 50; ++v) {
    ladder.AppendValue(v);
    ladder.Consolidate();
  }
  // Ascending appends with no cursor at the boundary extend one run.
  EXPECT_EQ(ladder.run_count(), 1u);
  EXPECT_EQ(ladder.Pull(0, &views), 50u);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_TRUE(std::is_sorted(views[0].data, views[0].data + views[0].size));
}

TEST(RunLadderTest, ResetDropsDataAndRealignsCursors) {
  RunLadder ladder;
  ladder.Reset(4);
  std::vector<uint64_t> run{3, 1, 4, 1, 5};
  std::sort(run.begin(), run.end());
  ladder.AppendSortedRun(run.data(), run.size());
  EXPECT_GT(ladder.held(), 0u);
  ladder.Reset(6);
  EXPECT_EQ(ladder.num_cursors(), 6u);
  EXPECT_EQ(ladder.held(), 0u);
  for (size_t c = 0; c < 6; ++c) EXPECT_EQ(ladder.pending(c), 0u);
  // Logical positions keep advancing across resets.
  ladder.AppendValue(42);
  EXPECT_EQ(ladder.pending(0), 1u);
  EXPECT_EQ(ladder.end(), 6u);
}

TEST(RunLadderTest, SpaceWordsTracksHeldValues) {
  RunLadder ladder;
  ladder.Reset(2);
  EXPECT_EQ(ladder.SpaceWords(), 2u);  // the cursors themselves
  std::vector<uint64_t> run{1, 2, 3, 4};
  ladder.AppendSortedRun(run.data(), run.size());
  EXPECT_EQ(ladder.SpaceWords(), 4u + 1u + 2u);  // values + header + cursors
}

}  // namespace
}  // namespace summaries
}  // namespace disttrack
