// Tests for the continuous distributed sampling baseline [9]: sample-size
// maintenance, unbiased count/frequency/rank estimates, O(1) site space,
// and the O(1/ε² · logN) communication profile.

#include <cmath>

#include <gtest/gtest.h>

#include "disttrack/sampling/distributed_sampler.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace sampling {
namespace {

using stream::MakeCountWorkload;
using stream::SiteSchedule;

DistributedSamplerOptions BaseOptions(double eps = 0.05, int k = 8,
                                      uint64_t seed = 1) {
  DistributedSamplerOptions o;
  o.num_sites = k;
  o.epsilon = eps;
  o.seed = seed;
  return o;
}

TEST(DistributedSamplerTest, OptionsValidate) {
  auto o = BaseOptions();
  EXPECT_TRUE(o.Validate().ok());
  o.epsilon = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = BaseOptions();
  o.sample_boost = 0.5;
  EXPECT_FALSE(o.Validate().ok());
  o = BaseOptions();
  o.num_sites = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(DistributedSamplerTest, LevelZeroKeepsEverythingSmall) {
  DistributedSampler sampler(BaseOptions(0.1));
  for (int i = 0; i < 50; ++i) sampler.Arrive(i % 8, static_cast<uint64_t>(i));
  EXPECT_EQ(sampler.level(), 0);
  EXPECT_EQ(sampler.SampleSize(), 50u);
  EXPECT_DOUBLE_EQ(sampler.EstimateCount(), 50.0);
}

TEST(DistributedSamplerTest, SampleSizeStaysBounded) {
  DistributedSampler sampler(BaseOptions(0.1));
  for (uint64_t i = 0; i < 300000; ++i) {
    sampler.Arrive(static_cast<int>(i % 8), i);
    ASSERT_LE(sampler.SampleSize(), 2 * sampler.capacity());
  }
  EXPECT_GT(sampler.level(), 0);
}

TEST(DistributedSamplerTest, CountIsUnbiased) {
  const uint64_t kN = 50000;
  auto errors = testing_util::CollectErrors(300, [&](uint64_t seed) {
    DistributedSampler sampler(BaseOptions(0.05, 8, seed));
    for (uint64_t i = 0; i < kN; ++i) {
      sampler.Arrive(static_cast<int>(i % 8), i);
    }
    return sampler.EstimateCount() - static_cast<double>(kN);
  });
  // std ~ eps*n/2 = 1250; mean over 300 trials ~ 72.
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 250.0);
}

TEST(DistributedSamplerTest, CountCoverage) {
  const uint64_t kN = 50000;
  const double eps = 0.05;
  auto errors = testing_util::CollectErrors(300, [&](uint64_t seed) {
    DistributedSampler sampler(BaseOptions(eps, 8, seed));
    for (uint64_t i = 0; i < kN; ++i) {
      sampler.Arrive(static_cast<int>(i % 8), i);
    }
    return sampler.EstimateCount() - static_cast<double>(kN);
  });
  EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9);
}

TEST(DistributedSamplerTest, FrequencyCoverage) {
  const uint64_t kN = 40000;
  const double eps = 0.05;
  // Item 7 occupies 30% of the stream.
  auto errors = testing_util::CollectErrors(250, [&](uint64_t seed) {
    DistributedSampler sampler(BaseOptions(eps, 4, seed));
    for (uint64_t i = 0; i < kN; ++i) {
      uint64_t item = (i % 10) < 3 ? 7 : 100 + (i % 50);
      sampler.Arrive(static_cast<int>(i % 4), item);
    }
    return sampler.EstimateFrequency(7) - 0.3 * static_cast<double>(kN);
  });
  EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9);
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 300.0);
}

TEST(DistributedSamplerTest, RankCoverage) {
  const uint64_t kN = 40000;
  const double eps = 0.05;
  auto errors = testing_util::CollectErrors(250, [&](uint64_t seed) {
    DistributedSampler sampler(BaseOptions(eps, 4, seed));
    Rng vals(seed ^ 0xF00D);
    uint64_t rank = 0;
    const uint64_t x = 1 << 15;
    for (uint64_t i = 0; i < kN; ++i) {
      uint64_t v = vals.UniformU64(1 << 16);
      if (v < x) ++rank;
      sampler.Arrive(static_cast<int>(i % 4), v);
    }
    return sampler.EstimateRank(x) - static_cast<double>(rank);
  });
  EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9);
}

TEST(DistributedSamplerTest, SiteSpaceIsConstant) {
  DistributedSampler sampler(BaseOptions(0.02));
  for (uint64_t i = 0; i < 200000; ++i) {
    sampler.Arrive(static_cast<int>(i % 8), i);
  }
  EXPECT_LE(sampler.space().MaxPeak(), 4u);
}

TEST(DistributedSamplerTest, CommunicationIndependentOfK) {
  // Table 1: sampling costs O(1/ε² logN) — k only enters via broadcasts.
  auto run = [](int k) {
    DistributedSampler sampler(BaseOptions(0.05, k, 3));
    for (uint64_t i = 0; i < 200000; ++i) {
      sampler.Arrive(static_cast<int>(i % static_cast<uint64_t>(k)), i);
    }
    return static_cast<double>(sampler.meter().uploads().messages);
  };
  double k4 = run(4);
  double k64 = run(64);
  EXPECT_NEAR(k64 / k4, 1.0, 0.15);  // uploads barely move with k
}

TEST(DistributedSamplerTest, CommunicationScalesWithInverseEpsSquared) {
  auto run = [](double eps) {
    DistributedSampler sampler(BaseOptions(eps, 8, 3));
    for (uint64_t i = 0; i < 400000; ++i) {
      sampler.Arrive(static_cast<int>(i % 8), i);
    }
    return static_cast<double>(sampler.meter().uploads().messages);
  };
  double coarse = run(0.1);
  double fine = run(0.05);  // 4x the sample size
  EXPECT_GT(fine / coarse, 2.0);
  EXPECT_LT(fine / coarse, 6.0);
}

TEST(SamplingAdaptersTest, InterfacesDelegate) {
  SamplingCountTracker count(BaseOptions());
  SamplingFrequencyTracker freq(BaseOptions());
  SamplingRankTracker rank(BaseOptions());
  for (uint64_t i = 0; i < 100; ++i) {
    count.Arrive(static_cast<int>(i % 8));
    freq.Arrive(static_cast<int>(i % 8), i % 5);
    rank.Arrive(static_cast<int>(i % 8), i);
  }
  EXPECT_EQ(count.TrueCount(), 100u);
  EXPECT_DOUBLE_EQ(count.EstimateCount(), 100.0);  // level still 0
  EXPECT_DOUBLE_EQ(freq.EstimateFrequency(0), 20.0);
  EXPECT_DOUBLE_EQ(rank.EstimateRank(50), 50.0);
}

}  // namespace
}  // namespace sampling
}  // namespace disttrack
