// Partial-read framing: FrameReader must recover the exact frame
// sequence from a TCP byte stream no matter how the kernel slices it —
// split at every byte boundary, coalesced with neighbors, or delivered
// one byte at a time — and the decode must be byte-identical to the
// in-memory DecodeFrame path (it IS the same DecodeFrame on the same
// bytes; these tests pin that no reassembly path perturbs it).

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/service/framing.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace service {
namespace {

using sim::wire::DecodeFrame;
using sim::wire::EncodeFrame;
using sim::wire::Message;
using sim::wire::MsgType;

void ExpectSameMessage(const Message& got, const Message& want) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.site, want.site);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.a, want.a);
  EXPECT_EQ(got.b, want.b);
  EXPECT_EQ(got.c, want.c);
  EXPECT_EQ(got.values, want.values);
  EXPECT_EQ(got.segments, want.segments);
  EXPECT_EQ(got.paper_words, want.paper_words);
}

/// A spread of frame shapes: scalar-only, vector-bearing (kRankSummary
/// with segments, kQueryResult with values), and service-plane control.
std::vector<Message> SampleMessages() {
  std::vector<Message> msgs;

  Message report;
  report.type = MsgType::kCoarseReport;
  report.site = 3;
  report.epoch = 7;
  report.a = 41;
  report.paper_words = 1;
  msgs.push_back(report);

  Message summary;
  summary.type = MsgType::kRankSummary;
  summary.site = 1;
  summary.a = 0;
  summary.b = 8;
  summary.values = {5, 9, 12, 99, 1024};
  summary.segments = {{1, 2}, {4, 5}};
  summary.paper_words = 5;
  msgs.push_back(summary);

  Message join;
  join.type = MsgType::kJoin;
  join.site = 2;
  join.a = 1;
  join.b = 0xDEADBEEFCAFEF00Dull;
  join.c = 4096;
  msgs.push_back(join);

  Message result;
  result.type = MsgType::kQueryResult;
  result.site = -1;
  result.a = 2;
  result.c = 4;
  result.values = {7, 0x3FF0000000000000ull, 11, 0x4000000000000000ull};
  msgs.push_back(result);

  Message shutdown;
  shutdown.type = MsgType::kShutdown;
  shutdown.site = -1;
  msgs.push_back(shutdown);

  return msgs;
}

std::vector<uint8_t> EncodeAll(const std::vector<Message>& msgs,
                               std::vector<size_t>* boundaries) {
  std::vector<uint8_t> stream;
  for (size_t i = 0; i < msgs.size(); ++i) {
    EncodeFrame(msgs[i], i + 1, &stream);
    if (boundaries != nullptr) boundaries->push_back(stream.size());
  }
  return stream;
}

void ExpectDecodesAll(FrameReader* reader, const std::vector<Message>& want,
                      size_t already_seen, size_t expect_count) {
  Message msg;
  uint64_t seq = 0;
  for (size_t i = 0; i < expect_count; ++i) {
    ASSERT_EQ(reader->Next(&msg, &seq), FrameReader::Result::kFrame)
        << "frame " << i;
    EXPECT_EQ(seq, already_seen + i + 1);
    ExpectSameMessage(msg, want[already_seen + i]);
  }
  EXPECT_EQ(reader->Next(&msg, &seq), FrameReader::Result::kNeed);
}

TEST(ServiceFraming, SplitAtEveryByteBoundary) {
  std::vector<Message> msgs = SampleMessages();
  std::vector<uint8_t> stream = EncodeAll(msgs, nullptr);
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameReader reader;
    reader.Append(stream.data(), split);
    // Frames fully contained in the prefix must already come out ...
    size_t seen = 0;
    Message msg;
    uint64_t seq = 0;
    while (reader.Next(&msg, &seq) == FrameReader::Result::kFrame) {
      EXPECT_EQ(seq, seen + 1);
      ExpectSameMessage(msg, msgs[seen]);
      ++seen;
    }
    ASSERT_TRUE(reader.error().empty()) << "split at " << split;
    // ... and the remainder completes the rest, byte-identically.
    reader.Append(stream.data() + split, stream.size() - split);
    ExpectDecodesAll(&reader, msgs, seen, msgs.size() - seen);
  }
}

TEST(ServiceFraming, OneByteAtATime) {
  std::vector<Message> msgs = SampleMessages();
  std::vector<uint8_t> stream = EncodeAll(msgs, nullptr);
  FrameReader reader;
  size_t seen = 0;
  Message msg;
  uint64_t seq = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    reader.Append(&stream[i], 1);
    while (reader.Next(&msg, &seq) == FrameReader::Result::kFrame) {
      ExpectSameMessage(msg, msgs[seen]);
      ++seen;
    }
  }
  EXPECT_EQ(seen, msgs.size());
}

TEST(ServiceFraming, CoalescedPairsArriveTogether) {
  std::vector<Message> msgs = SampleMessages();
  std::vector<size_t> boundaries;
  std::vector<uint8_t> stream = EncodeAll(msgs, &boundaries);
  // Feed two whole frames per Append (the classic coalesced read).
  FrameReader reader;
  size_t fed = 0;
  size_t seen = 0;
  for (size_t i = 1; i < boundaries.size(); i += 2) {
    reader.Append(stream.data() + fed, boundaries[i] - fed);
    fed = boundaries[i];
    Message msg;
    uint64_t seq = 0;
    while (reader.Next(&msg, &seq) == FrameReader::Result::kFrame) {
      ExpectSameMessage(msg, msgs[seen]);
      ++seen;
    }
  }
  reader.Append(stream.data() + fed, stream.size() - fed);
  ExpectDecodesAll(&reader, msgs, seen, msgs.size() - seen);
}

TEST(ServiceFraming, MatchesInMemoryDecodeByteForByte) {
  std::vector<Message> msgs = SampleMessages();
  std::vector<size_t> boundaries;
  std::vector<uint8_t> stream = EncodeAll(msgs, &boundaries);
  FrameReader reader;
  reader.Append(stream.data(), stream.size());
  size_t begin = 0;
  for (size_t i = 0; i < msgs.size(); ++i) {
    Message via_reader, via_memory;
    uint64_t seq_reader = 0, seq_memory = 0;
    ASSERT_EQ(reader.Next(&via_reader, &seq_reader),
              FrameReader::Result::kFrame);
    ASSERT_TRUE(DecodeFrame(stream.data() + begin, boundaries[i] - begin,
                            &via_memory, &seq_memory));
    EXPECT_EQ(seq_reader, seq_memory);
    ExpectSameMessage(via_reader, via_memory);
    begin = boundaries[i];
  }
}

TEST(ServiceFraming, BadMagicLatchesPermanentError) {
  std::vector<Message> msgs = SampleMessages();
  std::vector<uint8_t> stream = EncodeAll(msgs, nullptr);
  stream[0] ^= 0xFF;
  FrameReader reader;
  reader.Append(stream.data(), stream.size());
  Message msg;
  uint64_t seq = 0;
  EXPECT_EQ(reader.Next(&msg, &seq), FrameReader::Result::kError);
  EXPECT_FALSE(reader.error().empty());
  // Permanent: more bytes do not clear it.
  reader.Append(stream.data(), stream.size());
  EXPECT_EQ(reader.Next(&msg, &seq), FrameReader::Result::kError);
}

TEST(ServiceFraming, CorruptCrcLatchesError) {
  std::vector<Message> msgs = SampleMessages();
  std::vector<size_t> boundaries;
  std::vector<uint8_t> stream = EncodeAll(msgs, &boundaries);
  stream[boundaries[0] - 1] ^= 0x01;  // last CRC byte of frame 0
  FrameReader reader;
  reader.Append(stream.data(), stream.size());
  Message msg;
  uint64_t seq = 0;
  EXPECT_EQ(reader.Next(&msg, &seq), FrameReader::Result::kError);
}

TEST(ServiceFraming, WrongVersionRejected) {
  std::vector<Message> msgs = SampleMessages();
  std::vector<uint8_t> stream = EncodeAll(msgs, nullptr);
  stream[4] ^= 0xFF;  // version field (header bytes 4..5)
  FrameReader reader;
  reader.Append(stream.data(), stream.size());
  Message msg;
  uint64_t seq = 0;
  EXPECT_EQ(reader.Next(&msg, &seq), FrameReader::Result::kError);
}

TEST(ServiceFraming, TruncatedStreamStaysHungry) {
  std::vector<Message> msgs = SampleMessages();
  std::vector<uint8_t> stream = EncodeAll(msgs, nullptr);
  FrameReader reader;
  reader.Append(stream.data(), sim::wire::kHeaderBytes - 1);
  Message msg;
  uint64_t seq = 0;
  EXPECT_EQ(reader.Next(&msg, &seq), FrameReader::Result::kNeed);
  EXPECT_EQ(reader.buffered(), sim::wire::kHeaderBytes - 1);
}

}  // namespace
}  // namespace service
}  // namespace disttrack
