// Site kill + reconnect mid-run, test-pinned: a site hard-crashes
// (_exit(7), no flush, no goodbye) partway through its shard, a
// replacement process resumes — from its snapshot when one exists, from
// position zero otherwise — and the run must end indistinguishable from
// an uninterrupted one: estimates bit-identical to the serial replay of
// the grant journal, and the §1.1 paper ledger equal to the serial
// CommMeter to the message. That equality IS the no-double-counting
// proof: replayed frames re-arrive with their original sequence numbers
// and the coordinator's dedup watermark drops every one (the stats must
// show them as duplicates, not as paper traffic).
//
// Fork-based like service_session_test.cc; skipped under TSan.

#include <signal.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/count/randomized_count.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/service/coordinator.h"
#include "disttrack/service/options.h"
#include "disttrack/service/site_runtime.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace service {
namespace {

using sim::wire::Message;
using sim::wire::MsgType;

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DISTTRACK_TSAN 1
#endif
#endif

#ifndef DISTTRACK_TSAN
#define DISTTRACK_TSAN 0
#endif

uint64_t Bits(double d) {
  uint64_t bits = 0;
  memcpy(&bits, &d, sizeof(bits));
  return bits;
}

class RecoveryFleet {
 public:
  explicit RecoveryFleet(const ServiceOptions& options)
      : options_(options), coordinator_(options) {
    char tmpl[] = "/tmp/disttrack_recovery_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    snapshot_dir_ = dir == nullptr ? "." : dir;
  }

  ~RecoveryFleet() {
    for (pid_t pid : pids_) {
      if (pid > 0) kill(pid, SIGKILL);
    }
    for (pid_t pid : pids_) {
      if (pid > 0) waitpid(pid, nullptr, 0);
    }
  }

  void StartSite(int site, uint64_t crash_after = 0) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      close(fds[0]);
      for (int fd : parent_fds_) close(fd);
      SiteRuntime::Config config;
      config.options = options_;
      config.site = site;
      config.snapshot_dir = snapshot_dir_;
      config.crash_after = crash_after;
      config.connected_fd = fds[1];
      SiteRuntime runtime(config);
      _exit(runtime.Run());
    }
    close(fds[1]);
    parent_fds_.push_back(fds[0]);
    coordinator_.AdoptConnection(fds[0]);
    if (static_cast<size_t>(site) >= pids_.size()) {
      pids_.resize(static_cast<size_t>(site) + 1, -1);
    }
    pids_[static_cast<size_t>(site)] = pid;
  }

  /// Pumps until the crash-armed site dies; expects the deterministic
  /// crash code.
  void AwaitCrash(int site) {
    pid_t pid = pids_[static_cast<size_t>(site)];
    int status = 0;
    bool exited = false;
    for (int i = 0; i < 20000 && !exited; ++i) {
      exited = waitpid(pid, &status, WNOHANG) == pid;
      if (!exited) coordinator_.PollOnce(5);
    }
    ASSERT_TRUE(exited) << "armed site never crashed";
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 7);
    pids_[static_cast<size_t>(site)] = -1;
    // Drain the dead connection's EOF so the session is marked down
    // before the replacement joins.
    for (int i = 0; i < 50; ++i) coordinator_.PollOnce(5);
  }

  template <typename Predicate>
  bool PumpUntil(Predicate done, int max_rounds = 20000) {
    for (int i = 0; i < max_rounds; ++i) {
      if (done()) return true;
      EXPECT_GE(coordinator_.PollOnce(5), 0);
    }
    return done();
  }

  Coordinator& coordinator() { return coordinator_; }
  const std::string& snapshot_dir() const { return snapshot_dir_; }

 private:
  ServiceOptions options_;
  Coordinator coordinator_;
  std::string snapshot_dir_;
  std::vector<int> parent_fds_;
  std::vector<pid_t> pids_;
};

Message Ask(const Coordinator& coordinator, uint64_t kind, uint64_t b = 0) {
  Message query;
  query.type = MsgType::kQuery;
  query.a = kind;
  query.b = b;
  return coordinator.Query(query);
}

/// Runs a 4-site count fleet with site 2 crashing after `crash_after`
/// arrivals, recovers it, and pins bit-identity + paper-ledger equality.
void RunCountCrash(uint64_t crash_after, uint64_t snapshot_every) {
  ServiceOptions options;
  options.tracker = TrackerKind::kCount;
  options.num_sites = 4;
  options.total_arrivals = 6000;
  options.grant_max = 256;
  options.snapshot_every = snapshot_every;
  RecoveryFleet fleet(options);
  for (int site = 0; site < 4; ++site) {
    fleet.StartSite(site, site == 2 ? crash_after : 0);
  }
  fleet.AwaitCrash(2);
  fleet.StartSite(2);  // replacement: resumes from snapshot if present
  ASSERT_TRUE(
      fleet.PumpUntil([&] { return fleet.coordinator().AllSitesDone(); }));

  const Coordinator::Stats& stats = fleet.coordinator().stats();
  EXPECT_EQ(stats.rejoins, 1u);
  std::vector<uint64_t> s = Ask(fleet.coordinator(), kQueryStats).values;
  EXPECT_GE(s[11], 1u) << "recovery replay produced no duplicate frames";
  EXPECT_EQ(s[17], 1u) << "wire-byte ledger broken after recovery";

  Message journal = Ask(fleet.coordinator(), kQueryJournal);
  count::RandomizedCountTracker serial(options.CountOptions());
  uint64_t replayed = 0;
  for (size_t i = 0; i + 1 < journal.values.size(); i += 2) {
    for (uint64_t j = 0; j < journal.values[i + 1]; ++j) {
      serial.Arrive(static_cast<int>(journal.values[i]));
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, options.total_arrivals)
      << "grant journal lost or double-granted arrivals across the crash";

  // No double counting, to the message and to the word: replayed frames
  // were deduplicated, never re-charged.
  EXPECT_EQ(stats.paper_messages, serial.meter().TotalMessages());
  EXPECT_EQ(stats.paper_words, serial.meter().TotalWords());
  EXPECT_EQ(stats.broadcasts, serial.meter().broadcast_count());
  Message estimate = Ask(fleet.coordinator(), kQueryCount);
  EXPECT_EQ(estimate.values[0], Bits(serial.EstimateCount()))
      << "estimate diverged from the serial replay after recovery";
  EXPECT_GT(estimate.values[1], 0u);  // n' advanced past the crash
}

TEST(ServiceRecovery, CrashBeforeFirstSnapshotReplaysFromZero) {
  if (DISTTRACK_TSAN) GTEST_SKIP() << "fork-based test, skipped under TSan";
  // Crash at 300 arrivals, snapshots every 512 (none taken yet): the
  // replacement replays the whole shard; dedup swallows the prefix.
  RunCountCrash(/*crash_after=*/300, /*snapshot_every=*/512);
}

TEST(ServiceRecovery, CrashAfterSnapshotResumesFromIt) {
  if (DISTTRACK_TSAN) GTEST_SKIP() << "fork-based test, skipped under TSan";
  // Crash at 700 arrivals with a snapshot at the 512-boundary: the
  // replacement restores it and replays only the tail.
  RunCountCrash(/*crash_after=*/700, /*snapshot_every=*/256);
}

TEST(ServiceRecovery, RankSiteRecoversMidRun) {
  if (DISTTRACK_TSAN) GTEST_SKIP() << "fork-based test, skipped under TSan";
  ServiceOptions options;
  options.tracker = TrackerKind::kRank;
  options.num_sites = 4;
  options.total_arrivals = 6000;
  options.grant_max = 256;
  options.snapshot_every = 256;
  RecoveryFleet fleet(options);
  for (int site = 0; site < 4; ++site) {
    fleet.StartSite(site, site == 1 ? 900 : 0);
  }
  fleet.AwaitCrash(1);
  fleet.StartSite(1);
  ASSERT_TRUE(
      fleet.PumpUntil([&] { return fleet.coordinator().AllSitesDone(); }));

  Message journal = Ask(fleet.coordinator(), kQueryJournal);
  rank::RandomizedRankTracker serial(options.RankOptions());
  std::vector<uint64_t> position(4, 0);
  for (size_t i = 0; i + 1 < journal.values.size(); i += 2) {
    int site = static_cast<int>(journal.values[i]);
    for (uint64_t j = 0; j < journal.values[i + 1]; ++j) {
      serial.Arrive(site, WorkloadKey(options, site,
                                      position[static_cast<size_t>(site)]++));
    }
  }
  for (int i = 1; i <= 4; ++i) {
    uint64_t value = options.universe / 5 * static_cast<uint64_t>(i);
    Message rank = Ask(fleet.coordinator(), kQueryRank, value);
    EXPECT_EQ(rank.values[0], Bits(serial.EstimateRank(value)))
        << "rank estimate at " << value << " diverged after recovery";
  }
  EXPECT_EQ(fleet.coordinator().stats().paper_messages,
            serial.meter().TotalMessages());
  EXPECT_EQ(fleet.coordinator().stats().paper_words,
            serial.meter().TotalWords());
}

}  // namespace
}  // namespace service
}  // namespace disttrack
