// Coordinator + site processes end to end, in miniature: the parent runs
// a steppable Coordinator (AdoptConnection + PollOnce — no listener, no
// daemon loop) and each site is a real fork()ed SiteRuntime on one end of
// a socketpair. Pins the service protocol proper: join handshake, grant
// admission, blocking broadcast decisions, queries over the wire, the
// §1.1 paper ledger reconciling with a serial CommMeter to the message,
// and the wire-byte ledger (socket bytes == encoded frame bytes).
//
// Fork-without-exec is deliberate (no binary paths to plumb); the whole
// file is skipped under TSan, which cannot follow multiprocess tests.

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/service/coordinator.h"
#include "disttrack/service/options.h"
#include "disttrack/service/site_runtime.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace service {
namespace {

using sim::wire::Message;
using sim::wire::MsgType;

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DISTTRACK_TSAN 1
#endif
#endif

#ifndef DISTTRACK_TSAN
#define DISTTRACK_TSAN 0
#endif

uint64_t Bits(double d) {
  uint64_t bits = 0;
  memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// A fleet of fork()ed sites wired to an in-process coordinator.
class Fleet {
 public:
  explicit Fleet(const ServiceOptions& options)
      : options_(options), coordinator_(options) {}

  ~Fleet() {
    for (pid_t pid : pids_) {
      if (pid > 0) kill(pid, SIGKILL);
    }
    for (pid_t pid : pids_) {
      if (pid > 0) waitpid(pid, nullptr, 0);
    }
  }

  /// Forks one site; the child never returns. `snapshot_dir` and
  /// `crash_after` plumb straight into SiteRuntime::Config.
  void StartSite(int site, const std::string& snapshot_dir = "",
                 uint64_t crash_after = 0) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // The child owns fds[1] only: close the parent end plus every fd
      // inherited from earlier sites, or their EOFs would never fire.
      close(fds[0]);
      for (int fd : parent_fds_) close(fd);
      SiteRuntime::Config config;
      config.options = options_;
      config.site = site;
      config.snapshot_dir = snapshot_dir;
      config.crash_after = crash_after;
      config.connected_fd = fds[1];
      SiteRuntime runtime(config);
      _exit(runtime.Run());
    }
    close(fds[1]);
    parent_fds_.push_back(fds[0]);
    coordinator_.AdoptConnection(fds[0]);
    if (static_cast<size_t>(site) >= pids_.size()) {
      pids_.resize(static_cast<size_t>(site) + 1, -1);
    }
    pids_[static_cast<size_t>(site)] = pid;
  }

  /// Pumps the event loop until `done()` or the deadline trips.
  template <typename Predicate>
  bool PumpUntil(Predicate done, int max_rounds = 20000) {
    for (int i = 0; i < max_rounds; ++i) {
      if (done()) return true;
      EXPECT_GE(coordinator_.PollOnce(5), 0);
    }
    return done();
  }

  /// Waits for `site`'s process to exit; returns its exit code (pumping
  /// the coordinator so the fleet keeps making progress meanwhile).
  int AwaitExit(int site) {
    pid_t pid = pids_[static_cast<size_t>(site)];
    int status = 0;
    for (int i = 0; i < 20000; ++i) {
      pid_t r = waitpid(pid, &status, WNOHANG);
      if (r == pid) {
        pids_[static_cast<size_t>(site)] = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      }
      coordinator_.PollOnce(5);
    }
    return -2;  // never exited
  }

  void ShutdownAndReap() {
    // A client connection delivers kShutdown, like the real daemon.
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    coordinator_.AdoptConnection(fds[0]);
    parent_fds_.push_back(fds[0]);
    Message bye;
    bye.type = MsgType::kShutdown;
    std::vector<uint8_t> frame;
    sim::wire::EncodeFrame(bye, 0, &frame);
    ASSERT_TRUE(WriteAll(fds[1], frame.data(), frame.size()));
    close(fds[1]);
    ASSERT_TRUE(PumpUntil([&] { return coordinator_.ShutdownComplete(); }));
    for (size_t site = 0; site < pids_.size(); ++site) {
      if (pids_[site] < 0) continue;
      EXPECT_EQ(AwaitExit(static_cast<int>(site)), 0) << "site " << site;
    }
  }

  Coordinator& coordinator() { return coordinator_; }

 private:
  ServiceOptions options_;
  Coordinator coordinator_;
  std::vector<int> parent_fds_;
  std::vector<pid_t> pids_;
};

Message Ask(const Coordinator& coordinator, uint64_t kind, uint64_t b = 0) {
  Message query;
  query.type = MsgType::kQuery;
  query.a = kind;
  query.b = b;
  return coordinator.Query(query);
}

std::vector<uint64_t> StatsVector(const Coordinator& coordinator) {
  return Ask(coordinator, kQueryStats).values;
}

TEST(ServiceSession, LockstepCountFleetMatchesSerialBitForBit) {
  if (DISTTRACK_TSAN) GTEST_SKIP() << "fork-based test, skipped under TSan";
  ServiceOptions options;
  options.tracker = TrackerKind::kCount;
  options.num_sites = 4;
  options.total_arrivals = 6000;
  options.grant_max = 256;
  Fleet fleet(options);
  for (int site = 0; site < options.num_sites; ++site) fleet.StartSite(site);
  ASSERT_TRUE(
      fleet.PumpUntil([&] { return fleet.coordinator().AllSitesDone(); }));

  // Serial replay of the coordinator's grant journal: same arrival order,
  // same per-site streams, so everything must agree exactly.
  Message journal = Ask(fleet.coordinator(), kQueryJournal);
  count::RandomizedCountTracker serial(options.CountOptions());
  std::vector<uint64_t> position(4, 0);
  uint64_t replayed = 0;
  for (size_t i = 0; i + 1 < journal.values.size(); i += 2) {
    int site = static_cast<int>(journal.values[i]);
    for (uint64_t j = 0; j < journal.values[i + 1]; ++j) {
      serial.Arrive(site);
      ++position[static_cast<size_t>(site)];
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, options.total_arrivals);

  Message estimate = Ask(fleet.coordinator(), kQueryCount);
  EXPECT_EQ(estimate.values[0], Bits(serial.EstimateCount()));
  EXPECT_GT(estimate.values[1], 0u);  // n' has advanced

  const Coordinator::Stats& stats = fleet.coordinator().stats();
  EXPECT_EQ(stats.paper_messages, serial.meter().TotalMessages());
  EXPECT_EQ(stats.paper_words, serial.meter().TotalWords());
  EXPECT_EQ(stats.broadcasts, serial.meter().broadcast_count());

  // Wire-byte ledger: every socket byte is a frame byte, both ways.
  std::vector<uint64_t> s = StatsVector(fleet.coordinator());
  EXPECT_EQ(s[17], 1u) << "bytes_in=" << s[4] << " encoded_in=" << s[6]
                       << " bytes_out=" << s[5] << " encoded_out=" << s[7]
                       << " pending=" << s[8];

  fleet.ShutdownAndReap();
}

TEST(ServiceSession, FrequencyQueriesOverTheFleet) {
  if (DISTTRACK_TSAN) GTEST_SKIP() << "fork-based test, skipped under TSan";
  ServiceOptions options;
  options.tracker = TrackerKind::kFrequency;
  options.num_sites = 4;
  options.total_arrivals = 8000;
  options.grant_max = 512;
  Fleet fleet(options);
  for (int site = 0; site < options.num_sites; ++site) fleet.StartSite(site);
  ASSERT_TRUE(
      fleet.PumpUntil([&] { return fleet.coordinator().AllSitesDone(); }));

  Message journal = Ask(fleet.coordinator(), kQueryJournal);
  frequency::RandomizedFrequencyTracker serial(options.FrequencyOptions());
  std::vector<uint64_t> position(4, 0);
  for (size_t i = 0; i + 1 < journal.values.size(); i += 2) {
    int site = static_cast<int>(journal.values[i]);
    for (uint64_t j = 0; j < journal.values[i + 1]; ++j) {
      serial.Arrive(site, WorkloadKey(options, site,
                                      position[static_cast<size_t>(site)]++));
    }
  }
  for (uint64_t item = 0; item < 16; ++item) {
    Message point = Ask(fleet.coordinator(), kQueryPoint, item);
    EXPECT_EQ(point.values[0], Bits(serial.EstimateFrequency(item)))
        << "hot item " << item;
  }
  // The skewed synthetic stream concentrates 3/4 of arrivals on 16 items:
  // all of them must surface as phi = 0.01 heavy hitters.
  Message hh = Ask(fleet.coordinator(), kQueryHeavyHitters, Bits(0.01));
  EXPECT_GE(hh.values.size() / 2, 8u);
  fleet.ShutdownAndReap();
}

TEST(ServiceSession, FreerunFleetCompletesWithinEpsilon) {
  if (DISTTRACK_TSAN) GTEST_SKIP() << "fork-based test, skipped under TSan";
  ServiceOptions options;
  options.tracker = TrackerKind::kCount;
  options.mode = RunMode::kFreerun;
  options.num_sites = 4;
  options.total_arrivals = 6000;
  options.grant_max = 256;
  Fleet fleet(options);
  for (int site = 0; site < options.num_sites; ++site) fleet.StartSite(site);
  ASSERT_TRUE(
      fleet.PumpUntil([&] { return fleet.coordinator().AllSitesDone(); }));
  Message estimate = Ask(fleet.coordinator(), kQueryCount);
  double est = 0;
  uint64_t bits = estimate.values[0];
  memcpy(&est, &bits, sizeof(est));
  double n = static_cast<double>(options.total_arrivals);
  EXPECT_NEAR(est, n, 0.10 * n) << "freerun far outside the ε guarantee";
  fleet.ShutdownAndReap();
}

TEST(ServiceSession, MismatchedOptionsHashIsRejected) {
  if (DISTTRACK_TSAN) GTEST_SKIP() << "fork-based test, skipped under TSan";
  ServiceOptions options;
  options.num_sites = 2;
  options.total_arrivals = 100;
  Fleet fleet(options);
  // Site 0 joins with a different epsilon: kJoin carries the fleet hash
  // and the coordinator must turn it away (exit code 2).
  ServiceOptions wrong = options;
  wrong.epsilon = 0.2;
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    SiteRuntime::Config config;
    config.options = wrong;
    config.site = 0;
    config.connected_fd = fds[1];
    SiteRuntime runtime(config);
    _exit(runtime.Run());
  }
  close(fds[1]);
  fleet.coordinator().AdoptConnection(fds[0]);
  int status = 0;
  for (int i = 0; i < 20000; ++i) {
    if (waitpid(pid, &status, WNOHANG) == pid) break;
    fleet.coordinator().PollOnce(5);
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
}

}  // namespace
}  // namespace service
}  // namespace disttrack
