// Tests for disttrack/sim: communication metering (including the broadcast
// = k messages rule of §1.1), space gauges, and the replay drivers.

#include <gtest/gtest.h>

#include "disttrack/sim/cluster.h"
#include "disttrack/sim/comm_meter.h"
#include "disttrack/sim/protocol.h"
#include "disttrack/sim/space_gauge.h"

namespace disttrack {
namespace sim {
namespace {

TEST(CommMeterTest, StartsEmpty) {
  CommMeter m(4);
  EXPECT_EQ(m.TotalMessages(), 0u);
  EXPECT_EQ(m.TotalWords(), 0u);
  EXPECT_EQ(m.broadcast_count(), 0u);
}

TEST(CommMeterTest, UploadCharging) {
  CommMeter m(4);
  m.RecordUpload(0, 3);
  m.RecordUpload(1, 1);
  EXPECT_EQ(m.uploads().messages, 2u);
  EXPECT_EQ(m.uploads().words, 4u);
  EXPECT_EQ(m.TotalMessages(), 2u);
  EXPECT_EQ(m.SiteUploadMessages(0), 1u);
  EXPECT_EQ(m.SiteUploadMessages(1), 1u);
  EXPECT_EQ(m.SiteUploadMessages(2), 0u);
}

TEST(CommMeterTest, ZeroWordMessagesChargeOneWord) {
  CommMeter m(2);
  m.RecordUpload(0, 0);
  m.RecordDownload(1, 0);
  EXPECT_EQ(m.uploads().words, 1u);
  EXPECT_EQ(m.downloads().words, 1u);
}

TEST(CommMeterTest, BroadcastCostsKMessages) {
  CommMeter m(8);
  m.RecordBroadcast(1);
  EXPECT_EQ(m.downloads().messages, 8u);
  EXPECT_EQ(m.downloads().words, 8u);
  EXPECT_EQ(m.TotalMessages(), 8u);
  EXPECT_EQ(m.broadcast_count(), 1u);
  m.RecordBroadcast(2);
  EXPECT_EQ(m.downloads().words, 8u + 16u);
}

TEST(CommMeterTest, ResetClearsEverything) {
  CommMeter m(3);
  m.RecordUpload(2, 5);
  m.RecordBroadcast(1);
  m.Reset();
  EXPECT_EQ(m.TotalMessages(), 0u);
  EXPECT_EQ(m.TotalWords(), 0u);
  EXPECT_EQ(m.SiteUploadMessages(2), 0u);
}

TEST(CommMeterTest, MergeFromSums) {
  CommMeter a(2), b(2);
  a.RecordUpload(0, 1);
  b.RecordUpload(0, 2);
  b.RecordBroadcast(1);
  a.MergeFrom(b);
  EXPECT_EQ(a.uploads().messages, 2u);
  EXPECT_EQ(a.uploads().words, 3u);
  EXPECT_EQ(a.downloads().messages, 2u);
  EXPECT_EQ(a.SiteUploadMessages(0), 2u);
}

TEST(CommMeterTest, OutOfRangeSiteIsTolerated) {
  CommMeter m(2);
  m.RecordUpload(5, 1);  // still counted globally
  EXPECT_EQ(m.uploads().messages, 1u);
  EXPECT_EQ(m.SiteUploadMessages(5), 0u);
}

TEST(SpaceGaugeTest, SetTracksPeak) {
  SpaceGauge g(3);
  g.Set(1, 10);
  g.Set(1, 4);
  EXPECT_EQ(g.Current(1), 4u);
  EXPECT_EQ(g.Peak(1), 10u);
  EXPECT_EQ(g.MaxPeak(), 10u);
}

TEST(SpaceGaugeTest, AddSub) {
  SpaceGauge g(2);
  g.Add(0, 7);
  g.Sub(0, 3);
  EXPECT_EQ(g.Current(0), 4u);
  g.Sub(0, 100);  // clamps at zero
  EXPECT_EQ(g.Current(0), 0u);
  EXPECT_EQ(g.Peak(0), 7u);
}

TEST(SpaceGaugeTest, MeanPeak) {
  SpaceGauge g(2);
  g.Set(0, 10);
  g.Set(1, 20);
  EXPECT_DOUBLE_EQ(g.MeanPeak(), 15.0);
}

TEST(SpaceGaugeTest, ClearCurrentKeepsPeak) {
  SpaceGauge g(1);
  g.Set(0, 9);
  g.ClearCurrent();
  EXPECT_EQ(g.Current(0), 0u);
  EXPECT_EQ(g.Peak(0), 9u);
}

TEST(SpaceGaugeTest, MergeFromSums) {
  SpaceGauge a(2), b(2);
  a.Set(0, 5);
  b.Set(0, 7);
  a.MergeFrom(b);
  EXPECT_EQ(a.Current(0), 12u);
  EXPECT_EQ(a.Peak(0), 12u);
}

// A toy exact count tracker for replay-driver tests.
class ExactCountTracker : public CountTrackerInterface {
 public:
  explicit ExactCountTracker(int num_sites = 1)
      : meter_(num_sites), space_(num_sites) {}
  void Arrive(int /*site*/) override { ++n_; }
  double EstimateCount() const override { return static_cast<double>(n_); }
  uint64_t TrueCount() const override { return n_; }
  const CommMeter& meter() const override { return meter_; }
  const SpaceGauge& space() const override { return space_; }

 private:
  CommMeter meter_;
  SpaceGauge space_;
  uint64_t n_ = 0;
};

TEST(ReplayTest, CountCheckpointsAreGeometricAndEndAtN) {
  ExactCountTracker tracker;
  Workload w(1000, Arrival{0, 0});
  auto checkpoints = ReplayCount(&tracker, w, 2.0);
  ASSERT_FALSE(checkpoints.empty());
  EXPECT_EQ(checkpoints.back().n, 1000u);
  for (size_t i = 1; i < checkpoints.size(); ++i) {
    EXPECT_GT(checkpoints[i].n, checkpoints[i - 1].n);
  }
  for (const auto& c : checkpoints) {
    EXPECT_DOUBLE_EQ(c.estimate, static_cast<double>(c.n));
    EXPECT_DOUBLE_EQ(c.truth, static_cast<double>(c.n));
  }
}

TEST(PushBoundariesTest, CutsAtCheckpointsAndMaxPush) {
  // max_push-sized cuts, plus a cut at every checkpoint, ending at total.
  auto bounds = PushBoundaries(100, 30, {10, 45, 100});
  EXPECT_EQ(bounds, (std::vector<uint64_t>{10, 40, 45, 75, 100}));
  // Checkpoints past the end or behind the cursor are ignored.
  EXPECT_EQ(PushBoundaries(10, 100, {3, 3, 200}),
            (std::vector<uint64_t>{3, 10}));
  // Empty stream -> no pushes.
  EXPECT_TRUE(PushBoundaries(0, 5, {}).empty());
  // Boundaries partition [0, total): strictly ascending, last == total.
  auto dense = PushBoundaries(1000, 7, CheckpointCounts(1000, 1.5));
  ASSERT_FALSE(dense.empty());
  EXPECT_EQ(dense.back(), 1000u);
  for (size_t i = 1; i < dense.size(); ++i) {
    EXPECT_GT(dense[i], dense[i - 1]);
    EXPECT_LE(dense[i] - dense[i - 1], 7u);
  }
}

// Toy exact frequency and rank trackers.
class ExactFrequencyTracker : public FrequencyTrackerInterface {
 public:
  explicit ExactFrequencyTracker(int num_sites = 1)
      : meter_(num_sites), space_(num_sites) {}
  void Arrive(int /*site*/, uint64_t item) override {
    ++n_;
    ++freq_[item];
  }
  double EstimateFrequency(uint64_t item) const override {
    auto it = freq_.find(item);
    return it == freq_.end() ? 0.0 : static_cast<double>(it->second);
  }
  uint64_t TrueCount() const override { return n_; }
  const CommMeter& meter() const override { return meter_; }
  const SpaceGauge& space() const override { return space_; }

 private:
  CommMeter meter_;
  SpaceGauge space_;
  std::unordered_map<uint64_t, uint64_t> freq_;
  uint64_t n_ = 0;
};

TEST(ReplayTest, FrequencyTruthTracksQueryItem) {
  ExactFrequencyTracker tracker;
  Workload w;
  for (int i = 0; i < 100; ++i) w.push_back({0, static_cast<uint64_t>(i % 3)});
  auto checkpoints = ReplayFrequency(&tracker, w, 1, 2.0);
  ASSERT_FALSE(checkpoints.empty());
  const auto& last = checkpoints.back();
  EXPECT_EQ(last.n, 100u);
  EXPECT_DOUBLE_EQ(last.truth, 33.0);
  EXPECT_DOUBLE_EQ(last.estimate, 33.0);
}

class ExactRankTracker : public RankTrackerInterface {
 public:
  explicit ExactRankTracker(int num_sites = 1)
      : meter_(num_sites), space_(num_sites) {}
  void Arrive(int /*site*/, uint64_t value) override {
    ++n_;
    values_.push_back(value);
  }
  double EstimateRank(uint64_t value) const override {
    uint64_t below = 0;
    for (uint64_t v : values_) {
      if (v < value) ++below;
    }
    return static_cast<double>(below);
  }
  uint64_t TrueCount() const override { return n_; }
  const CommMeter& meter() const override { return meter_; }
  const SpaceGauge& space() const override { return space_; }

 private:
  CommMeter meter_;
  SpaceGauge space_;
  std::vector<uint64_t> values_;
  uint64_t n_ = 0;
};

TEST(ReplayTest, RankTruthMatchesExactTracker) {
  ExactRankTracker tracker;
  Workload w;
  for (uint64_t i = 0; i < 200; ++i) w.push_back({0, i % 10});
  auto checkpoints = ReplayRank(&tracker, w, 5, 1.5);
  for (const auto& c : checkpoints) {
    EXPECT_DOUBLE_EQ(c.estimate, c.truth);
  }
  EXPECT_DOUBLE_EQ(checkpoints.back().truth, 100.0);
}

TEST(ReplayDeathTest, RejectsCheckpointFactorAtMostOne) {
  // The old behavior silently substituted 1.5; a bad factor now aborts
  // with a diagnostic instead of masking the caller's bug.
  ExactCountTracker tracker;
  Workload w{{0, 0}, {0, 0}};
  EXPECT_DEATH(ReplayCount(&tracker, w, 1.0), "checkpoint_factor");
  EXPECT_DEATH(ReplayCount(&tracker, w, 0.5), "checkpoint_factor");
  ExactRankTracker rank_tracker;
  EXPECT_DEATH(ReplayRank(&rank_tracker, w, 1, -2.0), "checkpoint_factor");
}

TEST(ReplayTest, BatchedScheduleMatchesHistoricalPerArrivalSchedule) {
  // The pre-batching loop checkpointed at n = 1, 2, 3, 5, 8, 12, ... for
  // factor 1.5 (first n with n >= next, next = 1 then 1.5 * n). The
  // batched driver must reproduce that schedule exactly.
  ExactCountTracker tracker;
  Workload w(40);
  auto checkpoints = ReplayCount(&tracker, w, 1.5);
  std::vector<uint64_t> ns;
  for (const auto& c : checkpoints) ns.push_back(c.n);
  std::vector<uint64_t> expected{1, 2, 3, 5, 8, 12, 18, 27, 40};
  EXPECT_EQ(ns, expected);
}

TEST(ArriveBatchTest, DefaultImplementationDeliversEveryElementInOrder) {
  // A tracker that only overrides Arrive() must still see each batched
  // arrival exactly once via the interface's default ArriveBatch.
  ExactFrequencyTracker tracker(3);
  Workload w;
  for (uint64_t i = 0; i < 57; ++i) {
    w.push_back({static_cast<int>(i % 3), i % 5});
  }
  tracker.ArriveBatch(w.data(), w.size());
  EXPECT_EQ(tracker.TrueCount(), 57u);
  EXPECT_DOUBLE_EQ(tracker.EstimateFrequency(0), 12.0);
}

TEST(ArriveBatchTest, DefaultArriveSitesDeliversEveryElement) {
  ExactCountTracker tracker;
  SiteStream sites{0, 0, 0, 0, 0};
  tracker.ArriveSites(sites.data(), sites.size());
  EXPECT_EQ(tracker.TrueCount(), 5u);
  EXPECT_DOUBLE_EQ(tracker.EstimateCount(), 5.0);
}

TEST(ReplayTest, SiteStreamReplayMatchesWorkloadReplay) {
  ExactCountTracker a(4), b(4);
  Workload w;
  SiteStream sites;
  for (uint64_t i = 0; i < 300; ++i) {
    w.push_back({static_cast<int>(i % 4), 0});
    sites.push_back(static_cast<uint16_t>(i % 4));
  }
  auto cw = ReplayCount(&a, w, 1.5);
  auto cs = ReplayCountSites(&b, sites, 1.5);
  ASSERT_EQ(cw.size(), cs.size());
  for (size_t i = 0; i < cw.size(); ++i) {
    EXPECT_EQ(cw[i].n, cs[i].n);
    EXPECT_DOUBLE_EQ(cw[i].estimate, cs[i].estimate);
  }
}

}  // namespace
}  // namespace sim
}  // namespace disttrack
