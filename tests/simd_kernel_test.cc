// Differential suite for every kernel in common/simd.h: the AVX2 path
// must agree with its scalar mirror on randomized inputs covering all
// alignments, tail lengths 0-15, and duplicate-heavy key distributions —
// and the whole suite runs in both dispatch modes, so on an AVX2 machine
// the vector kernels are exercised and on any machine the scalar
// fallback is proven to satisfy the same contracts.

#include "disttrack/common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "disttrack/common/random.h"
#include "disttrack/common/small_sort.h"
#include "disttrack/frequency/counter_table.h"

namespace disttrack {
namespace {

// Runs `body` under both dispatch modes and always restores kAuto.
template <typename Fn>
void InBothDispatchModes(Fn&& body) {
  simd::SetDispatchMode(simd::DispatchMode::kAuto);
  body();
  simd::SetDispatchMode(simd::DispatchMode::kForceScalar);
  body();
  simd::SetDispatchMode(simd::DispatchMode::kAuto);
}

TEST(SimdDispatch, ForceScalarPinsAvx2Off) {
  simd::SetDispatchMode(simd::DispatchMode::kForceScalar);
  EXPECT_FALSE(simd::Avx2Active());
  simd::SetDispatchMode(simd::DispatchMode::kAuto);
  if (!simd::CompiledWithSimd()) EXPECT_FALSE(simd::Avx2Active());
}

TEST(SimdCtrlGroup, MatchesScalarMirrorAtEveryAlignment) {
  Rng rng(0x5eed0001);
  // Oversized buffer so the group window can start at any byte offset.
  std::vector<uint8_t> ctrl(4096 + simd::kCtrlGroupWidth);
  InBothDispatchModes([&] {
    for (int trial = 0; trial < 200; ++trial) {
      for (auto& c : ctrl) {
        // Mix of empties, one repeated fingerprint, and arbitrary bytes.
        uint64_t r = rng.UniformU64(4);
        c = r == 0 ? 0
                   : (r == 1 ? 0x80 : static_cast<uint8_t>(
                                          rng.UniformU64(256)));
      }
      for (size_t off = 0; off < simd::kCtrlGroupWidth; ++off) {
        uint8_t fp = trial % 2 == 0
                         ? 0x80
                         : static_cast<uint8_t>(0x80 | rng.UniformU64(128));
        simd::CtrlGroup got = simd::MatchCtrlGroup(ctrl.data() + off, fp);
        simd::CtrlGroup want =
            simd::MatchCtrlGroupScalar(ctrl.data() + off, fp);
        ASSERT_EQ(got.match, want.match) << "offset " << off;
        ASSERT_EQ(got.empty, want.empty) << "offset " << off;
      }
    }
  });
}

TEST(SimdSortSmall, AgreesWithStdSortForEveryLengthAndAlignment) {
  Rng rng(0x5eed0002);
  InBothDispatchModes([&] {
    for (int trial = 0; trial < 400; ++trial) {
      for (size_t n = 0; n <= 16; ++n) {
        // Unaligned starts: sort inside an offset window of a buffer.
        size_t off = rng.UniformU64(4);
        std::vector<uint64_t> buf(off + n);
        bool dup_heavy = trial % 3 == 0;
        for (size_t i = 0; i < n; ++i) {
          buf[off + i] = dup_heavy ? rng.UniformU64(4)
                                   : rng.NextU64();
        }
        std::vector<uint64_t> want(buf.begin() + static_cast<long>(off),
                                   buf.end());
        std::sort(want.begin(), want.end());
        std::vector<uint64_t> input(buf.begin() + static_cast<long>(off),
                                    buf.end());
        if (!simd::SortSmall16(buf.data() + off, n)) {
          // Contract: a declined call leaves the input untouched.
          for (size_t i = 0; i < n; ++i) ASSERT_EQ(buf[off + i], input[i]);
          small_sort_internal::NetworkSort(buf.data() + off, n > 0 ? n : 1);
          if (n < 2) continue;
        }
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(buf[off + i], want[i]) << "n=" << n << " i=" << i;
        }
      }
    }
  });
}

TEST(SimdSortSmall, SortRunDispatchesIdentically) {
  Rng rng(0x5eed0003);
  InBothDispatchModes([&] {
    for (int trial = 0; trial < 200; ++trial) {
      size_t n = rng.UniformU64(40);
      std::vector<uint64_t> v(n);
      for (auto& x : v) x = rng.UniformU64(trial % 2 == 0 ? 8 : ~0ull);
      std::vector<uint64_t> want = v;
      std::sort(want.begin(), want.end());
      SortRun(v.data(), n);
      ASSERT_EQ(v, want);
    }
  });
}

TEST(SimdMerge, AgreesWithStdMergeAllTailsAndAlignments) {
  Rng rng(0x5eed0004);
  InBothDispatchModes([&] {
    for (int trial = 0; trial < 300; ++trial) {
      // Cover tails 0-15 on each side plus longer runs, every alignment.
      size_t na = trial % 2 == 0 ? rng.UniformU64(16)
                                 : 16 + rng.UniformU64(120);
      size_t nb = trial % 3 == 0 ? rng.UniformU64(16)
                                 : 16 + rng.UniformU64(120);
      size_t offa = rng.UniformU64(4);
      size_t offb = rng.UniformU64(4);
      uint64_t lim = trial % 4 == 0 ? 8 : ~0ull;  // duplicate-heavy mix
      std::vector<uint64_t> a(offa + na);
      std::vector<uint64_t> b(offb + nb);
      for (size_t i = 0; i < na; ++i) a[offa + i] = rng.UniformU64(lim);
      for (size_t i = 0; i < nb; ++i) b[offb + i] = rng.UniformU64(lim);
      std::sort(a.begin() + static_cast<long>(offa), a.end());
      std::sort(b.begin() + static_cast<long>(offb), b.end());
      std::vector<uint64_t> want(na + nb);
      std::merge(a.begin() + static_cast<long>(offa), a.end(),
                 b.begin() + static_cast<long>(offb), b.end(), want.begin());
      std::vector<uint64_t> got(na + nb + 7, 0xDEADull);
      size_t offo = rng.UniformU64(4);
      simd::MergeSorted(a.data() + offa, na, b.data() + offb, nb,
                        got.data() + offo);
      for (size_t i = 0; i < na + nb; ++i) {
        ASSERT_EQ(got[offo + i], want[i]) << "na=" << na << " nb=" << nb;
      }
    }
  });
}

TEST(SimdTwoViewSelect, Vector4MatchesScalarSelection) {
  Rng rng(0x5eed0005);
  InBothDispatchModes([&] {
    for (int trial = 0; trial < 300; ++trial) {
      size_t a = rng.UniformU64(40);
      size_t b = trial % 5 == 0 ? 0 : rng.UniformU64(40);
      if (a + b < 4) continue;
      uint64_t lim = trial % 3 == 0 ? 6 : ~0ull;
      std::vector<uint64_t> A(a);
      std::vector<uint64_t> B(b);
      for (auto& x : A) x = rng.UniformU64(lim);
      for (auto& x : B) x = rng.UniformU64(lim);
      std::sort(A.begin(), A.end());
      std::sort(B.begin(), B.end());
      // Reference: the fully merged array.
      std::vector<uint64_t> merged(a + b);
      std::merge(A.begin(), A.end(), B.begin(), B.end(), merged.begin());
      for (int rep = 0; rep < 8; ++rep) {
        size_t idx[4];
        for (auto& i : idx) i = rng.UniformU64(a + b);
        uint64_t out[4];
        simd::TwoViewSelect4(A.data(), a, B.data(), b, idx, out);
        for (int t = 0; t < 4; ++t) {
          ASSERT_EQ(out[t], merged[idx[t]]) << "i=" << idx[t];
          ASSERT_EQ(simd::TwoViewSelect(A.data(), a, B.data(), b, idx[t]),
                    merged[idx[t]]);
        }
#if DISTTRACK_SIMD_ENABLED
        // The gather variant is demoted from production dispatch (see
        // TwoViewSelect4's header comment) but stays pinned here so the
        // demotion remains a one-line revert.
        if (simd::Avx2Active()) {
          uint64_t vout[4];
          simd::internal::TwoViewSelect4Avx2(A.data(), a, B.data(), b, idx,
                                             vout);
          for (int t = 0; t < 4; ++t) {
            ASSERT_EQ(vout[t], merged[idx[t]]) << "i=" << idx[t];
          }
        }
#endif
      }
    }
  });
}

// Whole-table differential: the grouped-probe increment path must leave
// the counter table in exactly the state the scalar walk leaves, for
// bursty (duplicate-run) and scattered key mixes alike.
TEST(SimdCounterTable, IncrementTrackedRunMatchesScalarTable) {
  Rng rng(0x5eed0006);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<uint64_t> tracked;
    size_t num_tracked = 1 + rng.UniformU64(200);
    for (size_t i = 0; i < num_tracked; ++i) {
      tracked.push_back(rng.UniformU64(1000));
    }
    std::vector<uint64_t> run;
    size_t run_len = rng.UniformU64(3000);
    for (size_t i = 0; i < run_len; ++i) {
      uint64_t key = rng.UniformU64(1000);
      size_t burst = 1 + rng.UniformU64(trial % 2 == 0 ? 6 : 1);
      for (size_t r = 0; r < burst; ++r) run.push_back(key);
    }
    simd::SetDispatchMode(simd::DispatchMode::kAuto);
    frequency::CounterTable simd_table;
    for (uint64_t key : tracked) {
      if (simd_table.Find(key) == nullptr) simd_table.Insert(key, 1);
    }
    simd_table.IncrementTrackedRun(run.data(), run.size());

    simd::SetDispatchMode(simd::DispatchMode::kForceScalar);
    frequency::CounterTable scalar_table;
    for (uint64_t key : tracked) {
      if (scalar_table.Find(key) == nullptr) scalar_table.Insert(key, 1);
    }
    scalar_table.IncrementTrackedRun(run.data(), run.size());
    simd::SetDispatchMode(simd::DispatchMode::kAuto);

    ASSERT_EQ(simd_table.size(), scalar_table.size());
    simd_table.ForEach([&](uint64_t key, uint64_t value) {
      const uint64_t* other = scalar_table.Find(key);
      ASSERT_NE(other, nullptr) << "key " << key;
      ASSERT_EQ(value, *other) << "key " << key;
    });
  }
}

// Find/Insert/Clear/Grow keep the grouped probe and the scalar probe in
// agreement across epochs and growth (the mirrored ctrl tail must track
// every mutation).
TEST(SimdCounterTable, FindAgreesAcrossEpochsAndGrowth) {
  Rng rng(0x5eed0007);
  InBothDispatchModes([&] {
    frequency::CounterTable table;
    std::vector<std::pair<uint64_t, uint64_t>> live;
    for (int epoch = 0; epoch < 6; ++epoch) {
      live.clear();
      size_t inserts = 1 + rng.UniformU64(500);  // forces several grows
      for (size_t i = 0; i < inserts; ++i) {
        uint64_t key = rng.UniformU64(2000);
        if (table.Find(key) == nullptr) {
          uint64_t value = 1 + rng.UniformU64(100);
          table.Insert(key, value);
          live.emplace_back(key, value);
        }
      }
      for (const auto& [key, value] : live) {
        const uint64_t* found = table.Find(key);
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(*found, value);
      }
      for (int probe = 0; probe < 200; ++probe) {
        uint64_t key = 2000 + rng.UniformU64(2000);  // never inserted
        ASSERT_EQ(table.Find(key), nullptr);
      }
      table.Clear();
      ASSERT_EQ(table.size(), 0u);
    }
  });
}

}  // namespace
}  // namespace disttrack
