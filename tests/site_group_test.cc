// Differential tests for the site-grouped delivery layer
// (common/site_group.h): the permutation must be a stable counting sort
// (per-site stream order preserved), its histogram must match a direct
// tally, pooled scratch must survive reuse across calls of different
// shapes, and the broadcast-safety gate must agree with a replayed
// CoarseTracker on whether a chunk can broadcast.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/common/random.h"
#include "disttrack/common/site_group.h"
#include "disttrack/count/coarse_tracker.h"
#include "disttrack/sim/comm_meter.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace {

using stream::MakeFrequencyWorkload;
using stream::SiteSchedule;

// Reference grouping: per-site vectors in arrival order.
std::vector<std::vector<uint64_t>> ReferenceGroups(const sim::Workload& w,
                                                   size_t begin, size_t end,
                                                   int k) {
  std::vector<std::vector<uint64_t>> out(static_cast<size_t>(k));
  for (size_t i = begin; i < end; ++i) {
    out[static_cast<size_t>(w[i].site)].push_back(w[i].key);
  }
  return out;
}

void ExpectMatchesReference(const SiteGrouper& grouper, const sim::Workload& w,
                            size_t begin, size_t end, int k) {
  auto ref = ReferenceGroups(w, begin, end, k);
  size_t spans_seen = 0;
  int last_site = -1;
  for (const SiteGrouper::Span& span : grouper.spans()) {
    ASSERT_GT(span.site, last_site) << "spans must ascend by site";
    last_site = span.site;
    const auto& expect = ref[static_cast<size_t>(span.site)];
    ASSERT_EQ(span.length, expect.size());
    ASSERT_EQ(grouper.histogram()[span.site], expect.size());
    for (uint32_t j = 0; j < span.length; ++j) {
      ASSERT_EQ(span.data[j], expect[j])
          << "site " << span.site << " position " << j
          << " — stability violated";
    }
    ++spans_seen;
  }
  size_t nonempty = 0;
  for (const auto& g : ref) {
    if (!g.empty()) ++nonempty;
  }
  EXPECT_EQ(spans_seen, nonempty) << "empty sites must produce no span";
}

TEST(SiteGroupTest, ScatterIsAStableCountingSortAcrossSchedules) {
  for (auto sched : {SiteSchedule::kUniformRandom, SiteSchedule::kSingleSite,
                     SiteSchedule::kSkewedGeometric, SiteSchedule::kBursty}) {
    const int k = 13;
    auto w = MakeFrequencyWorkload(k, 20000, sched, 1000, 1.1, 99);
    SiteGrouper grouper;
    grouper.ScatterBySite(w.data(), w.size(), k);
    ExpectMatchesReference(grouper, w, 0, w.size(), k);
  }
}

TEST(SiteGroupTest, PooledScratchSurvivesReuseAcrossShapes) {
  // One grouper instance over chunks of wildly different sizes and site
  // counts — buffers are pooled, so later results must not be polluted
  // by earlier calls.
  SiteGrouper grouper;
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    int k = 1 + static_cast<int>(rng.UniformU64(40));
    size_t n = 1 + static_cast<size_t>(rng.UniformU64(5000));
    auto w = MakeFrequencyWorkload(k, n, SiteSchedule::kUniformRandom, 500,
                                   0.0, 1000 + static_cast<uint64_t>(round));
    size_t begin = static_cast<size_t>(rng.UniformU64(w.size()));
    grouper.ScatterBySite(w.data() + begin, w.size() - begin, k);
    ExpectMatchesReference(grouper, w, begin, w.size(), k);
  }
}

TEST(SiteGroupTest, SingleSiteAndMaxSiteEdges) {
  // k = 1: the whole batch is one span.
  sim::Workload w;
  for (uint64_t i = 0; i < 100; ++i) w.push_back(sim::Arrival{0, i * 3});
  SiteGrouper grouper;
  grouper.ScatterBySite(w.data(), w.size(), 1);
  ASSERT_EQ(grouper.spans().size(), 1u);
  EXPECT_EQ(grouper.spans()[0].site, 0);
  EXPECT_EQ(grouper.spans()[0].length, 100u);
  // Highest valid site id only.
  const int k = 1000;
  sim::Workload top;
  for (uint64_t i = 0; i < 17; ++i) top.push_back(sim::Arrival{k - 1, i});
  grouper.ScatterBySite(top.data(), top.size(), k);
  ASSERT_EQ(grouper.spans().size(), 1u);
  EXPECT_EQ(grouper.spans()[0].site, k - 1);
  EXPECT_EQ(grouper.spans()[0].length, 17u);
  for (uint32_t j = 0; j < 17; ++j) EXPECT_EQ(grouper.spans()[0].data[j], j);
}

TEST(SiteGroupTest, CountPassesMatchScatterHistogram) {
  const int k = 9;
  auto w = MakeFrequencyWorkload(k, 5000, SiteSchedule::kSkewedGeometric, 100,
                                 1.1, 5);
  sim::SiteStream sites(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    sites[i] = static_cast<uint16_t>(w[i].site);
  }
  SiteGrouper a, b, c;
  a.ScatterBySite(w.data(), w.size(), k);
  b.CountArrivals(w.data(), w.size(), k);
  c.CountSites(sites.data(), sites.size(), k);
  for (int s = 0; s < k; ++s) {
    EXPECT_EQ(b.histogram()[s], a.histogram()[s]);
    EXPECT_EQ(c.histogram()[s], a.histogram()[s]);
  }
  ASSERT_EQ(b.spans().size(), a.spans().size());
  for (size_t i = 0; i < a.spans().size(); ++i) {
    EXPECT_EQ(b.spans()[i].site, a.spans()[i].site);
    EXPECT_EQ(b.spans()[i].length, a.spans()[i].length);
    EXPECT_EQ(b.spans()[i].data, nullptr);
  }
}

TEST(SiteGroupDeathTest, OutOfRangeSiteAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Workload w{sim::Arrival{0, 1}, sim::Arrival{3, 2}};
  SiteGrouper grouper;
  EXPECT_DEATH(grouper.ScatterBySite(w.data(), w.size(), 3),
               "out of range");
  EXPECT_DEATH(grouper.CountArrivals(w.data(), w.size(), 3),
               "out of range");
}

// The broadcast-safety gate is exact: for any chunking of a real
// workload, BatchCannotBroadcast must return true exactly when replaying
// the chunk through the CoarseTracker produces no broadcast.
TEST(SiteGroupTest, BatchCannotBroadcastIsExactAgainstReplay) {
  const int k = 11;
  for (auto sched : {SiteSchedule::kUniformRandom, SiteSchedule::kSingleSite,
                     SiteSchedule::kBursty}) {
    auto w = MakeFrequencyWorkload(k, 60000, sched, 100, 0.0, 17);
    sim::CommMeter meter(k);
    count::CoarseTracker coarse(k, &meter);
    SiteGrouper grouper;
    Rng rng(23);
    size_t pos = 0;
    int safe_chunks = 0;
    int unsafe_chunks = 0;
    while (pos < w.size()) {
      size_t len = std::min<size_t>(1 + rng.UniformU64(4096), w.size() - pos);
      grouper.CountArrivals(w.data() + pos, len, k);
      bool predicted_safe = coarse.BatchCannotBroadcast(grouper.histogram());
      uint64_t round_before = coarse.round();
      for (size_t i = 0; i < len; ++i) coarse.Arrive(w[pos + i].site);
      bool was_safe = coarse.round() == round_before;
      ASSERT_EQ(predicted_safe, was_safe)
          << "chunk at " << pos << " len " << len;
      (predicted_safe ? safe_chunks : unsafe_chunks) += 1;
      pos += len;
    }
    EXPECT_GT(safe_chunks, 0);
    EXPECT_GT(unsafe_chunks, 0) << "workload must exercise both outcomes";
  }
}

}  // namespace
}  // namespace disttrack
