// Equivalence and error-bound coverage for the geometric-skip fast path
// across all three randomized trackers:
//
//  * determinism: with the same seed, the batched engines (ArriveBatch /
//    ArriveSites) consume the RNG identically to per-element Arrive(), so
//    estimates and communication must match bit-for-bit;
//  * distributional equivalence: the skip path and the historical
//    per-arrival Bernoulli path satisfy the same unbiasedness / coverage
//    bounds, including on the paper's hard instances (distribution µ and
//    the Theorem 2.4 adversarial schedule), whose growing streams cross
//    many p-halving broadcasts.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/stream/hard_instances.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace {

using stream::MakeCountWorkload;
using stream::MakeFrequencyWorkload;
using stream::MakeRankWorkload;
using stream::SiteSchedule;

TEST(SkipEquivalenceTest, CountBatchPathsAreBitIdenticalToScalar) {
  const int k = 8;
  const uint64_t kN = 200000;
  auto w = MakeCountWorkload(k, kN, SiteSchedule::kUniformRandom, 21);
  sim::SiteStream sites;
  sites.reserve(w.size());
  for (const auto& a : w) sites.push_back(static_cast<uint16_t>(a.site));

  count::RandomizedCountOptions o;
  o.num_sites = k;
  o.epsilon = 0.01;
  o.seed = 99;
  count::RandomizedCountTracker scalar(o), batched(o), site_stream(o);

  for (const auto& a : w) scalar.Arrive(a.site);
  // Ragged chunk sizes so batch boundaries land at arbitrary offsets.
  size_t i = 0, chunk = 1;
  while (i < w.size()) {
    size_t len = std::min(chunk, w.size() - i);
    batched.ArriveBatch(w.data() + i, len);
    i += len;
    chunk = chunk * 3 + 1;
  }
  i = 0;
  chunk = 7;
  while (i < sites.size()) {
    size_t len = std::min(chunk, sites.size() - i);
    site_stream.ArriveSites(sites.data() + i, len);
    i += len;
    chunk = chunk * 2 + 3;
  }

  EXPECT_DOUBLE_EQ(batched.EstimateCount(), scalar.EstimateCount());
  EXPECT_DOUBLE_EQ(site_stream.EstimateCount(), scalar.EstimateCount());
  EXPECT_EQ(batched.TrueCount(), scalar.TrueCount());
  EXPECT_EQ(site_stream.TrueCount(), scalar.TrueCount());
  EXPECT_EQ(batched.meter().TotalMessages(), scalar.meter().TotalMessages());
  EXPECT_EQ(site_stream.meter().TotalMessages(),
            scalar.meter().TotalMessages());
  EXPECT_EQ(batched.meter().TotalWords(), scalar.meter().TotalWords());
  EXPECT_EQ(batched.rounds(), scalar.rounds());
  EXPECT_DOUBLE_EQ(batched.p(), scalar.p());
}

TEST(SkipEquivalenceTest, CountMixedScalarAndBatchDeliveryIsIdentical) {
  const int k = 4;
  const uint64_t kN = 50000;
  auto w = MakeCountWorkload(k, kN, SiteSchedule::kSkewedGeometric, 23);

  count::RandomizedCountOptions o;
  o.num_sites = k;
  o.epsilon = 0.02;
  o.seed = 7;
  count::RandomizedCountTracker scalar(o), mixed(o);
  for (const auto& a : w) scalar.Arrive(a.site);
  // Alternate singleton Arrive() and batches over the same stream.
  size_t i = 0;
  bool single = true;
  while (i < w.size()) {
    if (single) {
      mixed.Arrive(w[i].site);
      ++i;
    } else {
      size_t len = std::min<size_t>(997, w.size() - i);
      mixed.ArriveBatch(w.data() + i, len);
      i += len;
    }
    single = !single;
  }
  EXPECT_DOUBLE_EQ(mixed.EstimateCount(), scalar.EstimateCount());
  EXPECT_EQ(mixed.meter().TotalMessages(), scalar.meter().TotalMessages());
}

TEST(SkipEquivalenceTest, FrequencyAndRankBatchesMatchScalar) {
  const int k = 8;
  const uint64_t kN = 60000;
  auto w = MakeFrequencyWorkload(k, kN, SiteSchedule::kUniformRandom, 1000,
                                 1.1, 31);
  {
    frequency::RandomizedFrequencyOptions o;
    o.num_sites = k;
    o.epsilon = 0.02;
    o.seed = 17;
    frequency::RandomizedFrequencyTracker scalar(o), batched(o);
    for (const auto& a : w) scalar.Arrive(a.site, a.key);
    size_t i = 0;
    while (i < w.size()) {
      size_t len = std::min<size_t>(4096, w.size() - i);
      batched.ArriveBatch(w.data() + i, len);
      i += len;
    }
    for (uint64_t item : {0ull, 1ull, 17ull, 999ull}) {
      EXPECT_DOUBLE_EQ(batched.EstimateFrequency(item),
                       scalar.EstimateFrequency(item));
    }
    EXPECT_EQ(batched.meter().TotalMessages(),
              scalar.meter().TotalMessages());
  }
  {
    auto rw = MakeRankWorkload(k, kN, SiteSchedule::kUniformRandom,
                               stream::ValueOrder::kUniformRandom, 16, 33);
    rank::RandomizedRankOptions o;
    o.num_sites = k;
    o.epsilon = 0.02;
    o.seed = 19;
    // Batched compaction is equivalent in distribution, not bit-identical
    // (fewer, larger compactions); the exact per-element feed is what this
    // test pins. batch_equivalence_test covers the batched path.
    o.use_batch_compaction = false;
    rank::RandomizedRankTracker scalar(o), batched(o);
    for (const auto& a : rw) scalar.Arrive(a.site, a.key);
    size_t i = 0;
    while (i < rw.size()) {
      size_t len = std::min<size_t>(2048, rw.size() - i);
      batched.ArriveBatch(rw.data() + i, len);
      i += len;
    }
    for (uint64_t q : {1000ull, 30000ull, 60000ull}) {
      EXPECT_DOUBLE_EQ(batched.EstimateRank(q), scalar.EstimateRank(q));
    }
    EXPECT_EQ(batched.meter().TotalMessages(),
              scalar.meter().TotalMessages());
  }
}

// Runs the count tracker over `w` once per seed and returns final errors.
std::vector<double> CountErrors(const sim::Workload& w, int k, double eps,
                                bool use_skip, int trials,
                                uint64_t base_seed) {
  return testing_util::CollectErrors(
      trials,
      [&](uint64_t seed) {
        count::RandomizedCountOptions o;
        o.num_sites = k;
        o.epsilon = eps;
        o.seed = seed;
        o.use_skip_sampling = use_skip;
        count::RandomizedCountTracker tracker(o);
        tracker.ArriveBatch(w.data(), w.size());
        return tracker.EstimateCount() -
               static_cast<double>(tracker.TrueCount());
      },
      base_seed);
}

TEST(SkipEquivalenceTest, CountCoverageOnMuHardInstance) {
  // Distribution µ (Theorem 2.2): with prob 1/2 the whole stream lands on
  // one site. Both the maximally-skewed and the round-robin case must stay
  // within ±εn with probability >= 0.9 under the skip path; the stream
  // crosses ~log2(εn√k) p-halvings on the way.
  const int k = 16;
  const uint64_t kN = 60000;
  const double eps = 0.05;
  for (uint64_t inst_seed : {1ull, 2ull}) {
    auto mu = stream::MakeMuInstance(k, kN, inst_seed);
    for (bool use_skip : {true, false}) {
      auto errors = CountErrors(mu.workload, k, eps, use_skip, 150,
                                5000 + inst_seed * 100);
      EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9)
          << "single_site=" << mu.single_site_case << " skip=" << use_skip;
      EXPECT_NEAR(testing_util::MeanOf(errors), 0.0,
                  eps * static_cast<double>(kN) / 3.0)
          << "skip=" << use_skip;
    }
  }
}

TEST(SkipEquivalenceTest, CountCoverageOnTheorem24Schedule) {
  // The adversarial round schedule of Theorem 2.4: geometrically growing
  // bursts to random site subsets — the construction designed to stress
  // the p-halving transitions. Checked at every geometric checkpoint.
  const int k = 16;
  const double eps = 0.05;
  auto hard = stream::MakeTheorem24Workload(k, eps, 10, 3);
  for (bool use_skip : {true, false}) {
    int ok = 0;
    const int kTrials = 60;
    for (int t = 0; t < kTrials; ++t) {
      count::RandomizedCountOptions o;
      o.num_sites = k;
      o.epsilon = eps;
      o.seed = 9000 + static_cast<uint64_t>(t);
      o.use_skip_sampling = use_skip;
      count::RandomizedCountTracker tracker(o);
      auto checkpoints = sim::ReplayCount(&tracker, hard.workload, 1.5);
      // Skip the tiny-n prefix where relative error is ill-conditioned.
      double worst =
          testing_util::MaxRelativeCheckpointError(checkpoints, 1000);
      if (worst <= eps) ++ok;
    }
    EXPECT_GE(ok, kTrials * 8 / 10) << "skip=" << use_skip;
  }
}

TEST(SkipEquivalenceTest, SkipAndNaiveCountAgreeInVariance) {
  // Same workload, same trial count: the two paths' error variances must
  // agree within sampling noise (ratio in [1/2, 2] for 200 trials).
  const int k = 8;
  const uint64_t kN = 40000;
  const double eps = 0.05;
  auto w = MakeCountWorkload(k, kN, SiteSchedule::kUniformRandom, 41);
  auto skip_errors = CountErrors(w, k, eps, true, 200, 3000);
  auto naive_errors = CountErrors(w, k, eps, false, 200, 4000);
  double v_skip = testing_util::VarianceOf(skip_errors);
  double v_naive = testing_util::VarianceOf(naive_errors);
  ASSERT_GT(v_naive, 0.0);
  double ratio = v_skip / v_naive;
  EXPECT_GT(ratio, 0.5) << v_skip << " vs " << v_naive;
  EXPECT_LT(ratio, 2.0) << v_skip << " vs " << v_naive;
}

TEST(SkipEquivalenceTest, FrequencyCoverageOnMuHardInstance) {
  // Feed the µ workload (all keys 0) to the frequency tracker: the
  // frequency of item 0 equals n, maximal per-item mass under maximal
  // skew, crossing every p-halving of the stream.
  const int k = 8;
  const uint64_t kN = 30000;
  const double eps = 0.05;
  auto mu = stream::MakeMuInstance(k, kN, 1);
  for (bool use_skip : {true, false}) {
    auto errors = testing_util::CollectErrors(
        60,
        [&](uint64_t seed) {
          frequency::RandomizedFrequencyOptions o;
          o.num_sites = k;
          o.epsilon = eps;
          o.seed = seed;
          o.use_skip_sampling = use_skip;
          frequency::RandomizedFrequencyTracker tracker(o);
          tracker.ArriveBatch(mu.workload.data(), mu.workload.size());
          return tracker.EstimateFrequency(0) - static_cast<double>(kN);
        },
        7000);
    EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9)
        << "skip=" << use_skip;
  }
}

TEST(SkipEquivalenceTest, RankCoverageUnderSkewAcrossRounds) {
  // Sorted single-site streams are the classic worst case for rank
  // summaries; the estimate at the median must stay within ±εn under both
  // coin paths.
  const int k = 8;
  const uint64_t kN = 20000;
  const double eps = 0.08;
  auto w = MakeRankWorkload(k, kN, SiteSchedule::kSingleSite,
                            stream::ValueOrder::kAscending, 16, 43);
  const uint64_t query = 1u << 15;
  uint64_t truth = stream::ExactRank(w, query);
  for (bool use_skip : {true, false}) {
    auto errors = testing_util::CollectErrors(
        40,
        [&](uint64_t seed) {
          rank::RandomizedRankOptions o;
          o.num_sites = k;
          o.epsilon = eps;
          o.seed = seed;
          o.use_skip_sampling = use_skip;
          rank::RandomizedRankTracker tracker(o);
          tracker.ArriveBatch(w.data(), w.size());
          return tracker.EstimateRank(query) - static_cast<double>(truth);
        },
        8000);
    EXPECT_GE(CoverageWithin(errors, eps * static_cast<double>(kN)), 0.9)
        << "skip=" << use_skip;
  }
}

}  // namespace
}  // namespace disttrack
