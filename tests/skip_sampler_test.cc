// Tests for the geometric-skip sampling primitives: Rng::BernoulliPow2 /
// GeometricFailuresPow2 and the SkipSampler, including the exactness
// property the trackers rely on — the skip-sampled success process is
// identical in distribution to per-arrival Bernoulli coins, before and
// across a p change.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/common/random.h"
#include "disttrack/common/skip_sampler.h"

namespace disttrack {
namespace {

// One-degree-of-freedom chi-squared statistic for `successes` hits out of
// `draws` at success probability p.
double ChiSquared1(uint64_t successes, uint64_t draws, double p) {
  double expect_hit = static_cast<double>(draws) * p;
  double expect_miss = static_cast<double>(draws) * (1.0 - p);
  double hit = static_cast<double>(successes);
  double miss = static_cast<double>(draws - successes);
  double chi = 0;
  if (expect_hit > 0) chi += (hit - expect_hit) * (hit - expect_hit) / expect_hit;
  if (expect_miss > 0) {
    chi += (miss - expect_miss) * (miss - expect_miss) / expect_miss;
  }
  return chi;
}

// chi^2(1 dof) stays below 15.1 with probability 1 - 1e-4; the seeds are
// fixed, so these are deterministic regression bounds, not flaky gates.
constexpr double kChi1Bound = 15.1;

TEST(BernoulliPow2Test, DegenerateLevels) {
  Rng rng(101);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.BernoulliPow2(0));
    EXPECT_TRUE(rng.BernoulliPow2(-3));
  }
}

TEST(BernoulliPow2Test, MatchesPow2ProbabilityChiSquared) {
  const int kDraws = 1 << 19;
  for (int j = 1; j <= 6; ++j) {
    Rng rng(200 + static_cast<uint64_t>(j));
    uint64_t hits = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (rng.BernoulliPow2(j)) ++hits;
    }
    EXPECT_LT(ChiSquared1(hits, kDraws, std::ldexp(1.0, -j)), kChi1Bound)
        << "j=" << j << " hits=" << hits;
  }
}

TEST(BernoulliPow2Test, AgreesWithNaiveBernoulliInDistribution) {
  // Same p through both APIs; the two empirical rates must agree within a
  // two-sample z-bound (5 sigma on fixed seeds).
  const int kDraws = 1 << 19;
  for (int j = 1; j <= 5; ++j) {
    double p = std::ldexp(1.0, -j);
    Rng a(300 + static_cast<uint64_t>(j)), b(400 + static_cast<uint64_t>(j));
    uint64_t hits_pow2 = 0, hits_naive = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (a.BernoulliPow2(j)) ++hits_pow2;
      if (b.Bernoulli(p)) ++hits_naive;
    }
    double diff = (static_cast<double>(hits_pow2) -
                   static_cast<double>(hits_naive)) /
                  kDraws;
    double sigma = std::sqrt(2.0 * p * (1.0 - p) / kDraws);
    EXPECT_LT(std::fabs(diff), 5.0 * sigma) << "j=" << j;
  }
}

TEST(BernoulliPow2Test, VeryLargeLevelIsEffectivelyNever) {
  Rng rng(55);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.BernoulliPow2(63));
  }
}

TEST(GeometricFailuresPow2Test, MeanMatchesClosedForm) {
  Rng rng(77);
  for (int j : {1, 3, 6}) {
    const int kDraws = 200000 >> j;
    double sum = 0;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(rng.GeometricFailuresPow2(j));
    }
    // Mean failures = (1-p)/p = 2^j - 1.
    double mean = std::ldexp(1.0, j) - 1.0;
    double sd = std::sqrt((1.0 - std::ldexp(1.0, -j)) /
                          std::pow(std::ldexp(1.0, -j), 2) / kDraws);
    EXPECT_NEAR(sum / kDraws, mean, 5.0 * sd) << "j=" << j;
  }
}

TEST(GeometricFailuresPow2Test, LevelZeroAlwaysSucceedsImmediately) {
  Rng rng(78);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.GeometricFailuresPow2(0), 0u);
}

TEST(SkipSamplerTest, PEqualsOneSucceedsEveryArrival) {
  Rng rng(500);
  SkipSampler sampler;
  sampler.ResetPow2(0, &rng);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(sampler.Next(&rng));
  sampler.Reset(1.0, &rng);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(sampler.Next(&rng));
}

TEST(SkipSamplerTest, SuccessRateMatchesPerArrivalCoins) {
  // The same number of arrivals through the skip sampler and through
  // per-arrival BernoulliPow2 must show statistically identical success
  // counts — the heart of the fast-path exactness claim.
  const int kArrivals = 1 << 20;
  for (int j : {2, 5, 8}) {
    Rng a(600 + static_cast<uint64_t>(j)), b(700 + static_cast<uint64_t>(j));
    SkipSampler sampler;
    sampler.ResetPow2(j, &a);
    uint64_t skip_hits = 0, coin_hits = 0;
    for (int i = 0; i < kArrivals; ++i) {
      if (sampler.Next(&a)) ++skip_hits;
      if (b.BernoulliPow2(j)) ++coin_hits;
    }
    double p = std::ldexp(1.0, -j);
    EXPECT_LT(ChiSquared1(skip_hits, kArrivals, p), kChi1Bound) << "j=" << j;
    double sigma = std::sqrt(2.0 * p * (1.0 - p) * kArrivals);
    EXPECT_LT(std::fabs(static_cast<double>(skip_hits) -
                        static_cast<double>(coin_hits)),
              5.0 * sigma)
        << "j=" << j;
  }
}

TEST(SkipSamplerTest, GapsAreGeometric) {
  // Chi-squared over the first few gap buckets against the Geometric(p)
  // pmf P(gap = g) = (1-p)^g p.
  const int j = 3;
  const double p = std::ldexp(1.0, -j);
  Rng rng(801);
  SkipSampler sampler;
  sampler.ResetPow2(j, &rng);
  const int kSuccesses = 200000;
  const int kBuckets = 16;  // gaps 0..14 plus overflow
  std::vector<uint64_t> observed(kBuckets, 0);
  uint64_t gap = 0;
  int collected = 0;
  while (collected < kSuccesses) {
    if (sampler.Next(&rng)) {
      ++observed[std::min<uint64_t>(gap, kBuckets - 1)];
      gap = 0;
      ++collected;
    } else {
      ++gap;
    }
  }
  double chi = 0;
  double tail = 1.0;
  for (int g = 0; g < kBuckets - 1; ++g) {
    double prob = std::pow(1.0 - p, g) * p;
    tail -= prob;
    double expect = kSuccesses * prob;
    double diff = static_cast<double>(observed[g]) - expect;
    chi += diff * diff / expect;
  }
  double expect_tail = kSuccesses * tail;
  double diff = static_cast<double>(observed[kBuckets - 1]) - expect_tail;
  chi += diff * diff / expect_tail;
  // 15 dof: P(chi > 45) ~ 7e-5 on a fixed seed.
  EXPECT_LT(chi, 45.0);
}

TEST(SkipSamplerTest, RedrawOnPChangeMatchesBothRates) {
  // p halves (j: 3 -> 4) mid-stream; each segment's success rate must
  // match its own p — the redraw-on-broadcast contract of the trackers.
  const int kPerSegment = 1 << 19;
  Rng rng(901);
  SkipSampler sampler;
  sampler.ResetPow2(3, &rng);
  uint64_t hits_a = 0, hits_b = 0;
  for (int i = 0; i < kPerSegment; ++i) {
    if (sampler.Next(&rng)) ++hits_a;
  }
  sampler.ResetPow2(4, &rng);  // the p-halving redraw
  for (int i = 0; i < kPerSegment; ++i) {
    if (sampler.Next(&rng)) ++hits_b;
  }
  EXPECT_LT(ChiSquared1(hits_a, kPerSegment, std::ldexp(1.0, -3)),
            kChi1Bound);
  EXPECT_LT(ChiSquared1(hits_b, kPerSegment, std::ldexp(1.0, -4)),
            kChi1Bound);
}

TEST(SkipSamplerTest, GeneralPModeMatchesRate) {
  const double p = 0.013;  // not a power of two (the rank tracker's case)
  Rng rng(1001);
  SkipSampler sampler;
  sampler.Reset(p, &rng);
  const int kArrivals = 1 << 20;
  uint64_t hits = 0;
  for (int i = 0; i < kArrivals; ++i) {
    if (sampler.Next(&rng)) ++hits;
  }
  EXPECT_LT(ChiSquared1(hits, kArrivals, p), kChi1Bound);
}

TEST(SkipSamplerTest, ConsumeFailuresRetiresSkipsExactly) {
  Rng rng(1101);
  SkipSampler sampler;
  sampler.ResetPow2(6, &rng);
  while (sampler.pending_skips() < 4) sampler.ResetPow2(6, &rng);
  uint64_t pending = sampler.pending_skips();
  sampler.ConsumeFailures(pending - 1);
  EXPECT_EQ(sampler.pending_skips(), 1u);
  EXPECT_FALSE(sampler.Next(&rng));  // the one remaining failure
  EXPECT_TRUE(sampler.Next(&rng));   // then the success
}

}  // namespace
}  // namespace disttrack
