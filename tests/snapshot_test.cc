// Snapshot round-trip property tests for all three trackers (robustness
// PR satellite): SerializeSiteState / RestoreSiteState must be a lossless
// round trip of everything that influences future behavior — counters,
// report state, RNG and skip-sampler streams, round-scoped globals.
//
// Protocol: run two trackers with identical options over the same
// workload (bit-identical state), then at several cut points serialize
// every ready site from one and restore the blob into the *other*. If the
// blob is complete and restore is exact, the twins stay bit-identical for
// the rest of the stream: same estimates at every later checkpoint, same
// paper traffic, and re-serializing yields the same blob.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "disttrack/count/randomized_count.h"
#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/sim/cluster.h"
#include "disttrack/stream/workload.h"

namespace disttrack {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Drives twin trackers through `workload`, cross-restoring snapshots at
/// every cut in `cuts` (pending until each site reports ready), asserting
/// `estimate` stays bit-identical throughout.
template <typename Tracker>
void RunTwinTest(Tracker& primary, Tracker& twin, const sim::Workload& workload,
                 const std::function<void(Tracker&, const sim::Arrival&)>& feed,
                 const std::function<double(const Tracker&)>& estimate,
                 int num_sites, const std::vector<uint64_t>& cuts) {
  size_t cut_idx = 0;
  std::vector<char> pending(static_cast<size_t>(num_sites), 0);
  for (uint64_t i = 0; i < workload.size(); ++i) {
    feed(primary, workload[i]);
    feed(twin, workload[i]);

    if (cut_idx < cuts.size() && cuts[cut_idx] == i + 1) {
      std::fill(pending.begin(), pending.end(), 1);
      ++cut_idx;
    }
    for (int s = 0; s < num_sites; ++s) {
      if (!pending[static_cast<size_t>(s)] || !primary.SiteSnapshotReady(s)) {
        continue;
      }
      pending[static_cast<size_t>(s)] = 0;
      ASSERT_TRUE(twin.SiteSnapshotReady(s));  // twins agree on readiness

      std::vector<uint64_t> blob, blob_twin, blob_again;
      primary.SerializeSiteState(s, &blob);
      twin.SerializeSiteState(s, &blob_twin);
      EXPECT_EQ(blob, blob_twin) << "site " << s << " at arrival " << i + 1;

      // Cross-restore, twice (idempotent), then re-serialize (stable).
      twin.RestoreSiteState(s, blob);
      twin.RestoreSiteState(s, blob);
      twin.SerializeSiteState(s, &blob_again);
      EXPECT_EQ(blob, blob_again) << "site " << s << " at arrival " << i + 1;
    }

    if ((i + 1) % 64 == 0 || i + 1 == workload.size()) {
      ASSERT_TRUE(SameBits(estimate(primary), estimate(twin)))
          << "twin diverged at arrival " << i + 1;
    }
  }
  EXPECT_EQ(primary.meter().TotalWords(), twin.meter().TotalWords());
  EXPECT_EQ(primary.meter().TotalMessages(), twin.meter().TotalMessages());
}

std::vector<uint64_t> Cuts(uint64_t n) {
  return {n / 7, n / 3, n / 2, (3 * n) / 4, n - 2};
}

TEST(SnapshotRoundTripTest, CountTrackerSurvivesCrossRestore) {
  const int k = 5;
  const uint64_t n = 4000;
  count::RandomizedCountOptions opt;
  opt.num_sites = k;
  opt.epsilon = 0.1;
  opt.seed = 31;
  sim::Workload w = stream::MakeCountWorkload(
      k, n, stream::SiteSchedule::kUniformRandom, 77);

  count::RandomizedCountTracker a(opt), b(opt);
  RunTwinTest<count::RandomizedCountTracker>(
      a, b, w,
      [](count::RandomizedCountTracker& t, const sim::Arrival& x) {
        t.Arrive(x.site);
      },
      [](const count::RandomizedCountTracker& t) { return t.EstimateCount(); },
      k, Cuts(n));
}

TEST(SnapshotRoundTripTest, CountTrackerSkipSamplingVariant) {
  const int k = 4;
  const uint64_t n = 3000;
  count::RandomizedCountOptions opt;
  opt.num_sites = k;
  opt.epsilon = 0.08;
  opt.seed = 5;
  opt.use_skip_sampling = true;
  sim::Workload w = stream::MakeCountWorkload(
      k, n, stream::SiteSchedule::kSkewedGeometric, 13);

  count::RandomizedCountTracker a(opt), b(opt);
  RunTwinTest<count::RandomizedCountTracker>(
      a, b, w,
      [](count::RandomizedCountTracker& t, const sim::Arrival& x) {
        t.Arrive(x.site);
      },
      [](const count::RandomizedCountTracker& t) { return t.EstimateCount(); },
      k, Cuts(n));
}

TEST(SnapshotRoundTripTest, FrequencyTrackerSurvivesCrossRestore) {
  const int k = 5;
  const uint64_t n = 4000;
  frequency::RandomizedFrequencyOptions opt;
  opt.num_sites = k;
  opt.epsilon = 0.15;
  opt.seed = 17;
  sim::Workload w = stream::MakeFrequencyWorkload(
      k, n, stream::SiteSchedule::kUniformRandom, 128, 1.1, 23);
  const uint64_t query = 1;

  frequency::RandomizedFrequencyTracker a(opt), b(opt);
  RunTwinTest<frequency::RandomizedFrequencyTracker>(
      a, b, w,
      [](frequency::RandomizedFrequencyTracker& t, const sim::Arrival& x) {
        t.Arrive(x.site, x.key);
      },
      [query](const frequency::RandomizedFrequencyTracker& t) {
        return t.EstimateFrequency(query);
      },
      k, Cuts(n));
}

TEST(SnapshotRoundTripTest, RankTrackerSurvivesCrossRestore) {
  const int k = 4;
  const uint64_t n = 4000;
  rank::RandomizedRankOptions opt;
  opt.num_sites = k;
  opt.epsilon = 0.15;
  opt.seed = 41;
  sim::Workload w = stream::MakeRankWorkload(
      k, n, stream::SiteSchedule::kUniformRandom,
      stream::ValueOrder::kUniformRandom, 24, 51);
  const uint64_t query = 1ull << 23;

  // Rank sites are ready only at chunk boundaries; the driver keeps the
  // request pending until the site reports ready.
  rank::RandomizedRankTracker a(opt), b(opt);
  RunTwinTest<rank::RandomizedRankTracker>(
      a, b, w,
      [](rank::RandomizedRankTracker& t, const sim::Arrival& x) {
        t.Arrive(x.site, x.key);
      },
      [query](const rank::RandomizedRankTracker& t) {
        return t.EstimateRank(query);
      },
      k, Cuts(n));
}

}  // namespace
}  // namespace disttrack
