// Statistical acceptance tier for the frequency and rank estimators: the
// checks a variance-breaking "optimization" would trip. Over >= 200
// independent seeds, for BOTH the historical hot path (per-arrival coins,
// unordered_map counter store, per-element compactor feed) and the
// current one (skip sampling, flat counter table, batched compactor
// feed), the final estimator error must be
//
//  * unbiased: |mean error| within a 4-sigma CLT band of zero, and
//  * variance-bounded: sample Var <= (eps * m)^2 * slack, where the
//    theory bound with the default confidence factor c = 4 is
//    (eps * m / c)^2 — slack 1.0 therefore leaves ~16x headroom for
//    sampling noise while still catching any real variance regression;
//
// and the two paths' variances must agree within sampling noise (their
// coin processes are identical in distribution; batched compaction can
// only shrink the compactor's variance).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/frequency/randomized_frequency.h"
#include "disttrack/rank/randomized_rank.h"
#include "disttrack/stream/workload.h"
#include "test_util.h"

namespace disttrack {
namespace {

using stream::MakeFrequencyWorkload;
using stream::MakeRankWorkload;
using stream::SiteSchedule;

constexpr int kTrials = 220;

struct PathStats {
  double mean = 0;
  double variance = 0;
};

void CheckCltBandAndVariance(const std::vector<double>& errors, double eps_m,
                             const char* label) {
  double mean = testing_util::MeanOf(errors);
  double var = testing_util::VarianceOf(errors);
  double sd = std::sqrt(var);
  EXPECT_LE(std::fabs(mean),
            4.0 * sd / std::sqrt(static_cast<double>(errors.size())) + 1e-9)
      << label << ": estimator bias outside the CLT band";
  EXPECT_LE(var, eps_m * eps_m) << label << ": variance above (eps*m)^2";
}

PathStats Summarize(const std::vector<double>& errors) {
  return PathStats{testing_util::MeanOf(errors),
                   testing_util::VarianceOf(errors)};
}

TEST(StatAcceptanceTest, FrequencyOldAndNewPathsMatchTheory) {
  const int k = 8;
  const uint64_t kN = 40000;
  const double eps = 0.05;
  // Zipf(1.1) stream: item 0 carries real mass, so the estimator exercises
  // both the counter channel and the negative sampling correction.
  auto w = MakeFrequencyWorkload(k, kN, SiteSchedule::kUniformRandom, 2000,
                                 1.1, 71);
  uint64_t truth = stream::ExactFrequency(w, 0);
  ASSERT_GT(truth, kN / 100);

  PathStats stats[2];
  for (int path = 0; path < 2; ++path) {
    const bool new_path = path == 1;
    auto errors = testing_util::CollectErrors(
        kTrials,
        [&](uint64_t seed) {
          frequency::RandomizedFrequencyOptions o;
          o.num_sites = k;
          o.epsilon = eps;
          o.seed = seed;
          // Old hot path: per-arrival Bernoulli coins + unordered_map
          // counter lists (scalar delivery). New: skip sampling + flat
          // open-addressing table + event-countdown batches.
          o.use_skip_sampling = new_path;
          o.use_flat_counters = new_path;
          frequency::RandomizedFrequencyTracker tracker(o);
          tracker.ArriveBatch(w.data(), w.size());
          return tracker.EstimateFrequency(0) - static_cast<double>(truth);
        },
        10000 + static_cast<uint64_t>(path) * 100000);
    CheckCltBandAndVariance(errors, eps * static_cast<double>(kN),
                            new_path ? "frequency/new" : "frequency/old");
    stats[path] = Summarize(errors);
  }
  ASSERT_GT(stats[0].variance, 0.0);
  double ratio = stats[1].variance / stats[0].variance;
  EXPECT_GT(ratio, 0.5) << stats[1].variance << " vs " << stats[0].variance;
  EXPECT_LT(ratio, 2.0) << stats[1].variance << " vs " << stats[0].variance;
}

TEST(StatAcceptanceTest, RankOldAndNewPathsMatchTheory) {
  const int k = 8;
  const uint64_t kN = 20000;
  const double eps = 0.05;
  auto w = MakeRankWorkload(k, kN, SiteSchedule::kUniformRandom,
                            stream::ValueOrder::kUniformRandom, 16, 73);
  const uint64_t query = 1u << 15;  // ~median of the 2^16 universe
  uint64_t truth = stream::ExactRank(w, query);

  PathStats stats[2];
  for (int path = 0; path < 2; ++path) {
    const bool new_path = path == 1;
    auto errors = testing_util::CollectErrors(
        kTrials,
        [&](uint64_t seed) {
          rank::RandomizedRankOptions o;
          o.num_sites = k;
          o.epsilon = eps;
          o.seed = seed;
          // Old hot path: per-arrival tail coins + per-element compactor
          // feed. New: skip sampling + batched compaction.
          o.use_skip_sampling = new_path;
          o.use_batch_compaction = new_path;
          rank::RandomizedRankTracker tracker(o);
          tracker.ArriveBatch(w.data(), w.size());
          return tracker.EstimateRank(query) - static_cast<double>(truth);
        },
        20000 + static_cast<uint64_t>(path) * 100000);
    CheckCltBandAndVariance(errors, eps * static_cast<double>(kN),
                            new_path ? "rank/new" : "rank/old");
    stats[path] = Summarize(errors);
  }
  ASSERT_GT(stats[0].variance, 0.0);
  // Batched compaction performs fewer compactions, so its variance may dip
  // below the scalar path's but must never exceed it beyond noise.
  double ratio = stats[1].variance / stats[0].variance;
  EXPECT_GT(ratio, 0.3) << stats[1].variance << " vs " << stats[0].variance;
  EXPECT_LT(ratio, 2.0) << stats[1].variance << " vs " << stats[0].variance;
}

TEST(StatAcceptanceTest, FrequencyRareItemStaysUnbiasedOnBothPaths) {
  // A rare item's estimate is dominated by the negative -d/p correction;
  // bias here is exactly the failure the naive estimator (2) exhibits.
  const int k = 8;
  const uint64_t kN = 30000;
  const double eps = 0.05;
  auto w = MakeFrequencyWorkload(k, kN, SiteSchedule::kUniformRandom, 5000,
                                 0.0, 79);  // uniform: every item rare
  const uint64_t item = 7;
  uint64_t truth = stream::ExactFrequency(w, item);
  for (bool new_path : {false, true}) {
    auto errors = testing_util::CollectErrors(
        kTrials,
        [&](uint64_t seed) {
          frequency::RandomizedFrequencyOptions o;
          o.num_sites = k;
          o.epsilon = eps;
          o.seed = seed;
          o.use_skip_sampling = new_path;
          o.use_flat_counters = new_path;
          frequency::RandomizedFrequencyTracker tracker(o);
          tracker.ArriveBatch(w.data(), w.size());
          return tracker.EstimateFrequency(item) - static_cast<double>(truth);
        },
        30000 + (new_path ? 100000u : 0u));
    CheckCltBandAndVariance(errors, eps * static_cast<double>(kN),
                            new_path ? "rare/new" : "rare/old");
  }
}

}  // namespace
}  // namespace disttrack
