// Tests for disttrack/stream: site schedules, Zipf items, planted
// frequencies, rank value orders, and the lower-bound hard instances.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "disttrack/stream/hard_instances.h"
#include "disttrack/stream/workload.h"
#include "disttrack/stream/zipf.h"

namespace disttrack {
namespace stream {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(100, 1.1, 5);
  double total = 0;
  for (uint64_t i = 0; i < 100; ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, HeadIsHeavier) {
  ZipfGenerator zipf(1000, 1.2, 5);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(100));
}

TEST(ZipfTest, EmpiricalMatchesAnalytic) {
  ZipfGenerator zipf(50, 1.0, 7);
  const int kDraws = 200000;
  std::vector<int> counts(50, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next()];
  for (uint64_t j : {0ull, 1ull, 5ull}) {
    double expected = zipf.Probability(j) * kDraws;
    EXPECT_NEAR(counts[j], expected, expected * 0.1 + 30);
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0, 9);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.Probability(i), 0.1, 1e-9);
  }
}

TEST(WorkloadTest, RoundRobinCycles) {
  auto w = MakeCountWorkload(4, 12, SiteSchedule::kRoundRobin, 1);
  ASSERT_EQ(w.size(), 12u);
  for (size_t t = 0; t < w.size(); ++t) {
    EXPECT_EQ(w[t].site, static_cast<int>(t % 4));
  }
}

TEST(WorkloadTest, SingleSiteAllAtZero) {
  auto w = MakeCountWorkload(8, 50, SiteSchedule::kSingleSite, 1);
  for (const auto& a : w) EXPECT_EQ(a.site, 0);
}

TEST(WorkloadTest, UniformRandomSpreadsAcrossSites) {
  auto w = MakeCountWorkload(4, 4000, SiteSchedule::kUniformRandom, 3);
  std::vector<int> per_site(4, 0);
  for (const auto& a : w) ++per_site[a.site];
  for (int c : per_site) EXPECT_NEAR(c, 1000, 150);
}

TEST(WorkloadTest, SkewedGeometricFavorsSiteZero) {
  auto w = MakeCountWorkload(8, 8000, SiteSchedule::kSkewedGeometric, 3);
  std::vector<int> per_site(8, 0);
  for (const auto& a : w) ++per_site[a.site];
  EXPECT_NEAR(per_site[0], 4000, 400);
  EXPECT_GT(per_site[0], per_site[1]);
  EXPECT_GT(per_site[1], per_site[2]);
}

TEST(WorkloadTest, BurstyIsContiguous) {
  auto w = MakeCountWorkload(4, 400, SiteSchedule::kBursty, 3);
  for (size_t t = 1; t < w.size(); ++t) {
    EXPECT_GE(w[t].site, w[t - 1].site);
  }
  EXPECT_EQ(w.front().site, 0);
  EXPECT_EQ(w.back().site, 3);
}

TEST(WorkloadTest, PlantedFrequenciesAreExact) {
  std::vector<uint64_t> counts{100, 50, 0, 25};
  auto w = MakePlantedFrequencyWorkload(4, counts,
                                        SiteSchedule::kUniformRandom, 11);
  EXPECT_EQ(w.size(), 175u);
  EXPECT_EQ(ExactFrequency(w, 0), 100u);
  EXPECT_EQ(ExactFrequency(w, 1), 50u);
  EXPECT_EQ(ExactFrequency(w, 2), 0u);
  EXPECT_EQ(ExactFrequency(w, 3), 25u);
}

TEST(WorkloadTest, CountSitesMatchesCountWorkloadSequence) {
  // MakeCountSites must reproduce the exact site sequence of
  // MakeCountWorkload for the same (k, n, schedule, seed).
  for (auto schedule : {SiteSchedule::kRoundRobin,
                        SiteSchedule::kUniformRandom,
                        SiteSchedule::kSkewedGeometric}) {
    auto w = MakeCountWorkload(12, 5000, schedule, 77);
    auto sites = MakeCountSites(12, 5000, schedule, 77);
    ASSERT_EQ(w.size(), sites.size());
    for (size_t i = 0; i < w.size(); ++i) {
      ASSERT_EQ(static_cast<uint16_t>(w[i].site), sites[i]) << i;
    }
  }
}

TEST(WorkloadTest, RankWorkloadStaysInUniverse) {
  auto w = MakeRankWorkload(4, 1000, SiteSchedule::kUniformRandom,
                            ValueOrder::kUniformRandom, 10, 13);
  for (const auto& a : w) EXPECT_LT(a.key, 1u << 10);
}

TEST(WorkloadTest, AscendingValuesSorted) {
  auto w = MakeRankWorkload(2, 500, SiteSchedule::kRoundRobin,
                            ValueOrder::kAscending, 16, 13);
  for (size_t t = 1; t < w.size(); ++t) {
    EXPECT_GE(w[t].key, w[t - 1].key);
  }
}

TEST(WorkloadTest, DescendingValuesSorted) {
  auto w = MakeRankWorkload(2, 500, SiteSchedule::kRoundRobin,
                            ValueOrder::kDescending, 16, 13);
  for (size_t t = 1; t < w.size(); ++t) {
    EXPECT_LE(w[t].key, w[t - 1].key);
  }
}

TEST(WorkloadTest, ExactRankCountsStrictlySmaller) {
  sim::Workload w{{0, 5}, {0, 3}, {0, 5}, {0, 7}};
  EXPECT_EQ(ExactRank(w, 5), 1u);
  EXPECT_EQ(ExactRank(w, 6), 3u);
  EXPECT_EQ(ExactRank(w, 100), 4u);
  EXPECT_EQ(ExactRank(w, 0), 0u);
}

TEST(HardInstancesTest, MuCaseShapes) {
  int single = 0, robin = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    auto mu = MakeMuInstance(4, 100, seed);
    EXPECT_EQ(mu.workload.size(), 100u);
    if (mu.single_site_case) {
      ++single;
      ASSERT_GE(mu.chosen_site, 0);
      ASSERT_LT(mu.chosen_site, 4);
      for (const auto& a : mu.workload) EXPECT_EQ(a.site, mu.chosen_site);
    } else {
      ++robin;
      EXPECT_EQ(mu.chosen_site, -1);
      for (size_t t = 0; t < mu.workload.size(); ++t) {
        EXPECT_EQ(mu.workload[t].site, static_cast<int>(t % 4));
      }
    }
  }
  // Both cases occur with probability 1/2 each.
  EXPECT_GT(single, 8);
  EXPECT_GT(robin, 8);
}

TEST(HardInstancesTest, OneBitInstanceHasExactlySOnes) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto inst = MakeOneBitInstance(100, seed);
    uint64_t ones = 0;
    for (uint8_t b : inst.bits) ones += b;
    EXPECT_EQ(ones, inst.s);
    EXPECT_TRUE(inst.s == 60 || inst.s == 40);  // k/2 ± √k for k = 100
    EXPECT_EQ(inst.s_is_high, inst.s == 60);
  }
}

TEST(HardInstancesTest, Theorem24WorkloadStructure) {
  auto hard = MakeTheorem24Workload(16, 0.05, 3, 7);
  // r = 1/(2·0.05·4) = 2.5 -> 2 subrounds per round.
  EXPECT_EQ(hard.subrounds_per_round, 2u);
  EXPECT_EQ(hard.rounds, 3u);
  EXPECT_EQ(hard.subround_s_high.size(), 6u);
  EXPECT_FALSE(hard.workload.empty());
  // Round i delivers 2^i elements per chosen site: total elements grow.
  for (const auto& a : hard.workload) {
    EXPECT_GE(a.site, 0);
    EXPECT_LT(a.site, 16);
  }
}

TEST(HardInstancesTest, ProbingAllSitesAlwaysSucceeds) {
  Rng rng(3);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    auto inst = MakeOneBitInstance(64, seed);
    EXPECT_TRUE(ProbeAndGuessOneBit(inst, 64, &rng));
  }
}

TEST(HardInstancesTest, FewProbesAreNearChance) {
  // With z = 4 probes out of k = 400 the two distributions are nearly
  // indistinguishable (Figure 1): success should be well below 0.8.
  double rate = OneBitSuccessRate(400, 4, 2000, 5);
  EXPECT_LT(rate, 0.65);
  EXPECT_GT(rate, 0.35);
}

TEST(HardInstancesTest, ManyProbesSeparate) {
  // Probing nearly all sites distinguishes s reliably (Claim A.1: z = Ω(k)).
  double rate = OneBitSuccessRate(400, 390, 1000, 5);
  EXPECT_GT(rate, 0.9);
}

TEST(HardInstancesTest, SuccessRateMonotoneInZ) {
  double lo = OneBitSuccessRate(256, 8, 1500, 9);
  double mid = OneBitSuccessRate(256, 64, 1500, 9);
  double hi = OneBitSuccessRate(256, 250, 1500, 9);
  EXPECT_LT(lo, mid + 0.05);
  EXPECT_LT(mid, hi + 0.05);
  EXPECT_GT(hi, 0.85);
}

}  // namespace
}  // namespace stream
}  // namespace disttrack
