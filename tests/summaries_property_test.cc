// Parameterized property sweeps for the summary substrate: the formal
// guarantee of each sketch is asserted across an epsilon grid and several
// stream shapes — the "property tests on invariants" layer of the suite.

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "disttrack/common/random.h"
#include "disttrack/stream/zipf.h"
#include "disttrack/summaries/compactor_summary.h"
#include "disttrack/summaries/gk_summary.h"
#include "disttrack/summaries/misra_gries.h"
#include "disttrack/summaries/space_saving.h"
#include "disttrack/summaries/sticky_sampling.h"
#include "test_util.h"

namespace disttrack {
namespace summaries {
namespace {

enum class StreamShape { kUniform, kZipf, kSorted, kTwoHeavy };

std::vector<uint64_t> MakeStream(StreamShape shape, size_t n, uint64_t seed) {
  std::vector<uint64_t> out(n);
  switch (shape) {
    case StreamShape::kUniform: {
      Rng rng(seed);
      for (auto& v : out) v = rng.UniformU64(997);
      break;
    }
    case StreamShape::kZipf: {
      stream::ZipfGenerator zipf(5000, 1.2, seed);
      for (auto& v : out) v = zipf.Next();
      break;
    }
    case StreamShape::kSorted: {
      for (size_t i = 0; i < n; ++i) out[i] = i;
      break;
    }
    case StreamShape::kTwoHeavy: {
      Rng rng(seed);
      for (auto& v : out) {
        double u = rng.NextDouble();
        v = u < 0.4 ? 1 : (u < 0.7 ? 2 : 100 + rng.UniformU64(500));
      }
      break;
    }
  }
  return out;
}

std::string ShapeName(StreamShape shape) {
  switch (shape) {
    case StreamShape::kUniform:
      return "uniform";
    case StreamShape::kZipf:
      return "zipf";
    case StreamShape::kSorted:
      return "sorted";
    case StreamShape::kTwoHeavy:
      return "twoheavy";
  }
  return "?";
}

struct SketchParam {
  double eps;
  StreamShape shape;
};

std::string SketchParamName(const ::testing::TestParamInfo<SketchParam>& i) {
  return "eps" + std::to_string(static_cast<int>(i.param.eps * 1000)) + "_" +
         ShapeName(i.param.shape);
}

class FrequencySketchSweep : public ::testing::TestWithParam<SketchParam> {};

TEST_P(FrequencySketchSweep, MisraGriesGuarantee) {
  const auto& p = GetParam();
  auto data = MakeStream(p.shape, 30000, 7);
  MisraGries mg(static_cast<size_t>(std::ceil(1.0 / p.eps)));
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t v : data) {
    mg.Insert(v);
    ++truth[v];
  }
  double bound = p.eps * static_cast<double>(data.size());
  for (const auto& [item, f] : truth) {
    ASSERT_LE(mg.Estimate(item), f);
    ASSERT_GE(static_cast<double>(mg.Estimate(item)) + bound + 1,
              static_cast<double>(f));
  }
  ASSERT_LE(mg.NumCounters(), static_cast<size_t>(std::ceil(1.0 / p.eps)));
}

TEST_P(FrequencySketchSweep, SpaceSavingGuarantee) {
  const auto& p = GetParam();
  auto data = MakeStream(p.shape, 30000, 11);
  SpaceSaving ss(static_cast<size_t>(std::ceil(1.0 / p.eps)));
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t v : data) {
    ss.Insert(v);
    ++truth[v];
  }
  double bound = p.eps * static_cast<double>(data.size());
  for (const auto& [item, f] : truth) {
    ASSERT_GE(ss.Estimate(item), f);
    ASSERT_LE(static_cast<double>(ss.Estimate(item)),
              static_cast<double>(f) + bound + 1);
  }
}

TEST_P(FrequencySketchSweep, StickySamplingUnbiasedTopItem) {
  const auto& p = GetParam();
  auto data = MakeStream(p.shape, 20000, 13);
  // Pick the most frequent item as the probe.
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t v : data) ++truth[v];
  uint64_t probe = 0, best = 0;
  for (const auto& [item, f] : truth) {
    if (f > best) {
      best = f;
      probe = item;
    }
  }
  double sample_p = std::min(1.0, p.eps * 4);
  auto errors = testing_util::CollectErrors(300, [&](uint64_t seed) {
    StickySampling sticky(sample_p, seed);
    for (uint64_t v : data) sticky.Insert(v);
    return sticky.UnbiasedEstimate(probe) - static_cast<double>(best);
  });
  // Mean error ~ (1/p)/sqrt(trials).
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0,
              4.0 / sample_p / std::sqrt(300.0) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrequencySketchSweep,
    ::testing::Values(SketchParam{0.1, StreamShape::kUniform},
                      SketchParam{0.1, StreamShape::kZipf},
                      SketchParam{0.1, StreamShape::kTwoHeavy},
                      SketchParam{0.02, StreamShape::kUniform},
                      SketchParam{0.02, StreamShape::kZipf},
                      SketchParam{0.02, StreamShape::kSorted},
                      SketchParam{0.005, StreamShape::kZipf},
                      SketchParam{0.005, StreamShape::kTwoHeavy}),
    SketchParamName);

class RankSketchSweep : public ::testing::TestWithParam<SketchParam> {};

TEST_P(RankSketchSweep, GKGuaranteeEverywhere) {
  const auto& p = GetParam();
  auto data = MakeStream(p.shape, 30000, 17);
  GKSummary gk(p.eps);
  for (uint64_t v : data) gk.Insert(v);
  double bound = p.eps * static_cast<double>(data.size()) + 1;
  std::vector<uint64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (int q = 0; q <= 20; ++q) {
    size_t idx = static_cast<size_t>(q) * (sorted.size() - 1) / 20;
    uint64_t x = sorted[idx] + 1;
    uint64_t truth = static_cast<uint64_t>(
        std::upper_bound(sorted.begin(), sorted.end(), x - 1) -
        sorted.begin());
    ASSERT_NEAR(static_cast<double>(gk.EstimateRank(x)),
                static_cast<double>(truth), bound)
        << "query " << x;
  }
}

TEST_P(RankSketchSweep, CompactorVarianceAcrossQueries) {
  const auto& p = GetParam();
  auto data = MakeStream(p.shape, 8192, 19);
  std::vector<uint64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  // Probe the median.
  uint64_t x = sorted[sorted.size() / 2] + 1;
  uint64_t truth = static_cast<uint64_t>(
      std::upper_bound(sorted.begin(), sorted.end(), x - 1) - sorted.begin());
  auto errors = testing_util::CollectErrors(300, [&](uint64_t seed) {
    CompactorSummary c(p.eps, seed * 31 + 5);
    for (uint64_t v : data) c.Insert(v);
    return c.EstimateRank(x) - static_cast<double>(truth);
  });
  double bound = p.eps * static_cast<double>(data.size());
  EXPECT_LE(testing_util::VarianceOf(errors), bound * bound * 1.15);
  EXPECT_NEAR(testing_util::MeanOf(errors), 0.0,
              3 * bound / std::sqrt(300.0) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RankSketchSweep,
    ::testing::Values(SketchParam{0.1, StreamShape::kUniform},
                      SketchParam{0.1, StreamShape::kSorted},
                      SketchParam{0.05, StreamShape::kUniform},
                      SketchParam{0.05, StreamShape::kZipf},
                      SketchParam{0.02, StreamShape::kUniform},
                      SketchParam{0.02, StreamShape::kSorted}),
    SketchParamName);

// Compactor merge: merging in different orders preserves the guarantee
// (the mergeable-summaries property of [1] that §4 relies on).
TEST(CompactorMergeProperty, MergeOrderInvariantGuarantee) {
  const double eps = 0.05;
  std::vector<std::vector<uint64_t>> parts;
  Rng rng(23);
  std::vector<uint64_t> all;
  for (int i = 0; i < 4; ++i) {
    parts.emplace_back();
    for (int j = 0; j < 5000; ++j) {
      parts.back().push_back(rng.UniformU64(1 << 16));
      all.push_back(parts.back().back());
    }
  }
  std::sort(all.begin(), all.end());
  uint64_t x = 1 << 15;
  double truth = static_cast<double>(
      std::lower_bound(all.begin(), all.end(), x) - all.begin());

  // Left fold and balanced merge orders.
  for (int order = 0; order < 2; ++order) {
    auto errors = testing_util::CollectErrors(150, [&](uint64_t seed) {
      std::vector<std::unique_ptr<CompactorSummary>> s;
      for (int i = 0; i < 4; ++i) {
        s.push_back(std::make_unique<CompactorSummary>(
            eps, seed * 7 + static_cast<uint64_t>(i)));
        for (uint64_t v : parts[static_cast<size_t>(i)]) s.back()->Insert(v);
      }
      if (order == 0) {
        s[0]->MergeFrom(*s[1]);
        s[0]->MergeFrom(*s[2]);
        s[0]->MergeFrom(*s[3]);
      } else {
        s[0]->MergeFrom(*s[1]);
        s[2]->MergeFrom(*s[3]);
        s[0]->MergeFrom(*s[2]);
      }
      EXPECT_EQ(s[0]->WeightTotal(), all.size());
      return s[0]->EstimateRank(x) - truth;
    });
    double bound = 2 * eps * static_cast<double>(all.size());
    EXPECT_LE(testing_util::VarianceOf(errors), bound * bound)
        << "order " << order;
    EXPECT_NEAR(testing_util::MeanOf(errors), 0.0, 250.0) << "order " << order;
  }
}

}  // namespace
}  // namespace summaries
}  // namespace disttrack
