// Shared helpers for the disttrack test suite: trial runners that replay a
// workload through a tracker many times with independent seeds and collect
// error statistics for unbiasedness / variance / coverage assertions.

#ifndef DISTTRACK_TESTS_TEST_UTIL_H_
#define DISTTRACK_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "disttrack/common/stats.h"
#include "disttrack/sim/cluster.h"

namespace disttrack {
namespace testing_util {

/// Runs `trials` independent repetitions of `run_once(seed)` (which returns
/// estimate - truth) and returns the collected errors.
inline std::vector<double> CollectErrors(
    int trials, const std::function<double(uint64_t seed)>& run_once,
    uint64_t base_seed = 1000) {
  std::vector<double> errors;
  errors.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    errors.push_back(run_once(base_seed + static_cast<uint64_t>(t)));
  }
  return errors;
}

/// Mean of a vector.
inline double MeanOf(const std::vector<double>& v) {
  RunningStats s;
  for (double x : v) s.Add(x);
  return s.Mean();
}

/// Sample variance of a vector.
inline double VarianceOf(const std::vector<double>& v) {
  RunningStats s;
  for (double x : v) s.Add(x);
  return s.Variance();
}

/// Max absolute relative error over replay checkpoints, ignoring the first
/// `skip_below` elements (tiny-n checkpoints where relative error is
/// ill-conditioned).
inline double MaxRelativeCheckpointError(
    const std::vector<sim::Checkpoint>& checkpoints, uint64_t skip_below = 0) {
  double worst = 0;
  for (const auto& c : checkpoints) {
    if (c.n < skip_below || c.n == 0) continue;
    double rel = (c.estimate - static_cast<double>(c.truth)) /
                 static_cast<double>(c.n);
    if (rel < 0) rel = -rel;
    if (rel > worst) worst = rel;
  }
  return worst;
}

}  // namespace testing_util
}  // namespace disttrack

#endif  // DISTTRACK_TESTS_TEST_UTIL_H_
