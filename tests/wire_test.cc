// Tests for the wire framing and the fault-injected transport layer:
// frame round-trips for every message type, exact EncodedSize, decoder
// rejection of corrupt / foreign / truncated frames, backoff schedule,
// reliable channel properties (dedup, in-order delivery, retransmission,
// crash resets), link fault determinism, and FaultPlan derivation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "disttrack/common/backoff.h"
#include "disttrack/sim/transport.h"
#include "disttrack/sim/wire.h"

namespace disttrack {
namespace sim {
namespace {

wire::Message SampleMessage(wire::MsgType type) {
  wire::Message msg;
  msg.type = type;
  msg.site = type == wire::MsgType::kBroadcast ? -1 : 3;
  msg.epoch = 7;
  msg.a = 0xDEADBEEFCAFEull;
  msg.b = 42;
  msg.c = 1ull << 60;
  msg.paper_words = 2;
  if (type == wire::MsgType::kRankSummary) {
    msg.values = {5, 9, 9, 1ull << 40};
    msg.segments = {{1, 2}, {4, 4}};
    msg.paper_words = 7;
  }
  return msg;
}

std::vector<wire::MsgType> AllTypes() {
  return {wire::MsgType::kCoarseReport, wire::MsgType::kCoinReport,
          wire::MsgType::kCorrection,   wire::MsgType::kBroadcast,
          wire::MsgType::kSplitNotice,  wire::MsgType::kCounterReport,
          wire::MsgType::kSampleForward, wire::MsgType::kRankSummary,
          wire::MsgType::kRankResidual, wire::MsgType::kAck,
          wire::MsgType::kHello};
}

TEST(WireFrameTest, RoundTripsEveryMessageType) {
  for (wire::MsgType type : AllTypes()) {
    wire::Message msg = SampleMessage(type);
    std::vector<uint8_t> frame;
    wire::EncodeFrame(msg, 99, &frame);
    EXPECT_EQ(frame.size(), wire::EncodedSize(msg));

    wire::Message decoded;
    uint64_t seq = 0;
    ASSERT_TRUE(wire::DecodeFrame(frame.data(), frame.size(), &decoded, &seq))
        << "type " << static_cast<int>(type);
    EXPECT_EQ(seq, 99u);
    EXPECT_EQ(decoded.type, msg.type);
    EXPECT_EQ(decoded.site, msg.site);
    EXPECT_EQ(decoded.epoch, msg.epoch);
    EXPECT_EQ(decoded.a, msg.a);
    EXPECT_EQ(decoded.b, msg.b);
    EXPECT_EQ(decoded.c, msg.c);
    EXPECT_EQ(decoded.paper_words, msg.paper_words);
    EXPECT_EQ(decoded.values, msg.values);
    EXPECT_EQ(decoded.segments, msg.segments);
  }
}

TEST(WireFrameTest, EncodeAppendsWithoutClearing) {
  wire::Message a = SampleMessage(wire::MsgType::kCoinReport);
  wire::Message b = SampleMessage(wire::MsgType::kRankSummary);
  std::vector<uint8_t> buffer;
  wire::EncodeFrame(a, 1, &buffer);
  size_t first = buffer.size();
  wire::EncodeFrame(b, 2, &buffer);
  EXPECT_EQ(buffer.size(), wire::EncodedSize(a) + wire::EncodedSize(b));

  wire::Message decoded;
  uint64_t seq = 0;
  ASSERT_TRUE(wire::DecodeFrame(buffer.data(), first, &decoded, &seq));
  EXPECT_EQ(decoded.type, wire::MsgType::kCoinReport);
  ASSERT_TRUE(wire::DecodeFrame(buffer.data() + first, buffer.size() - first,
                                &decoded, &seq));
  EXPECT_EQ(decoded.type, wire::MsgType::kRankSummary);
  EXPECT_EQ(seq, 2u);
}

TEST(WireFrameTest, RejectsCorruption) {
  wire::Message msg = SampleMessage(wire::MsgType::kRankSummary);
  std::vector<uint8_t> frame;
  wire::EncodeFrame(msg, 5, &frame);

  wire::Message out;
  uint64_t seq = 0;

  // Truncation at every length.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(wire::DecodeFrame(frame.data(), cut, &out, &seq))
        << "cut " << cut;
  }

  // Any single flipped bit must be caught (header checks or CRC).
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> bad = frame;
    bad[i] ^= 0x40;
    EXPECT_FALSE(wire::DecodeFrame(bad.data(), bad.size(), &out, &seq))
        << "flip at " << i;
  }
}

TEST(WireFrameTest, EveryTruncationOfEveryTypeIsRejectedWithoutOverrun) {
  // Fuzz-style sweep: for every message type, every strict prefix of a
  // valid frame must be rejected. Each prefix lives in its OWN exactly-
  // sized heap allocation, so any decoder read past the advertised
  // length is an ASan heap-buffer-overflow, not a silent success — the
  // full-frame RejectsCorruption sweep above cannot see those. The
  // decoder must also leave the outputs untouched on failure.
  for (wire::MsgType type : AllTypes()) {
    wire::Message msg = SampleMessage(type);
    std::vector<uint8_t> frame;
    wire::EncodeFrame(msg, 123, &frame);
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      std::unique_ptr<uint8_t[]> exact(new uint8_t[cut]);
      std::copy(frame.begin(), frame.begin() + cut, exact.get());
      wire::Message out = SampleMessage(wire::MsgType::kRankSummary);
      out.a = 0x5E17;
      uint64_t seq = 0x5E17;
      EXPECT_FALSE(wire::DecodeFrame(exact.get(), cut, &out, &seq))
          << "type " << static_cast<int>(type) << " cut " << cut;
      // Rejection without side effects: a partial decode must not leak
      // into the caller's message or sequence number.
      EXPECT_EQ(out.a, 0x5E17u) << "cut " << cut;
      EXPECT_EQ(seq, 0x5E17u) << "cut " << cut;
    }
  }
}

TEST(WireFrameTest, RejectsUnknownVersion) {
  wire::Message msg = SampleMessage(wire::MsgType::kHello);
  std::vector<uint8_t> frame;
  wire::EncodeFrame(msg, 1, &frame);
  // Version lives right after the 4-byte magic (little-endian u16). A
  // decoder must reject unknown versions even if the CRC were fixed up,
  // but flipping it alone must already fail.
  frame[4] ^= 0xFF;
  wire::Message out;
  uint64_t seq = 0;
  EXPECT_FALSE(wire::DecodeFrame(frame.data(), frame.size(), &out, &seq));
}

TEST(WireFrameTest, PaperWordChargeRules) {
  const int k = 8;
  wire::Message msg = SampleMessage(wire::MsgType::kCoinReport);
  msg.paper_words = 3;
  EXPECT_EQ(wire::PaperWordCharge(msg, k), 3u);

  msg.paper_words = 0;  // the max(1, words) floor
  EXPECT_EQ(wire::PaperWordCharge(msg, k), 1u);

  wire::Message bcast = SampleMessage(wire::MsgType::kBroadcast);
  bcast.paper_words = 1;
  EXPECT_EQ(wire::PaperWordCharge(bcast, k), static_cast<uint64_t>(k));

  wire::Message ack = SampleMessage(wire::MsgType::kAck);
  EXPECT_EQ(wire::PaperWordCharge(ack, k), 0u);
  wire::Message hello = SampleMessage(wire::MsgType::kHello);
  EXPECT_EQ(wire::PaperWordCharge(hello, k), 0u);
}

TEST(BackoffTest, CappedExponentialSchedule) {
  ExponentialBackoff b(4, 64);
  EXPECT_EQ(b.DelayFor(0), 4u);
  EXPECT_EQ(b.DelayFor(1), 8u);
  EXPECT_EQ(b.DelayFor(2), 16u);
  EXPECT_EQ(b.DelayFor(3), 32u);
  EXPECT_EQ(b.DelayFor(4), 64u);
  EXPECT_EQ(b.DelayFor(5), 64u);     // capped
  EXPECT_EQ(b.DelayFor(200), 64u);   // shift-overflow safe
}

TEST(ReliableChannelTest, InOrderDeliveryAndDedup) {
  ReliableSender sender{ExponentialBackoff(4, 64)};
  ReliableReceiver receiver;

  std::vector<std::vector<uint8_t>> frames(3);
  std::vector<wire::Message> msgs(3);
  for (int i = 0; i < 3; ++i) {
    msgs[i] = SampleMessage(wire::MsgType::kCoinReport);
    msgs[i].a = static_cast<uint64_t>(i);
    EXPECT_EQ(sender.Stage(msgs[i], 0, &frames[i]),
              static_cast<uint64_t>(i + 1));
  }

  // Deliver out of order: 3, 1, 2, then 1 again (duplicate).
  std::vector<wire::Message> delivered;
  wire::Message m;
  uint64_t seq;
  ASSERT_TRUE(wire::DecodeFrame(frames[2].data(), frames[2].size(), &m, &seq));
  EXPECT_TRUE(receiver.Accept(seq, m, &delivered));
  EXPECT_TRUE(delivered.empty());  // waiting for 1 and 2
  EXPECT_EQ(receiver.watermark(), 0u);

  ASSERT_TRUE(wire::DecodeFrame(frames[0].data(), frames[0].size(), &m, &seq));
  EXPECT_TRUE(receiver.Accept(seq, m, &delivered));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].a, 0u);

  ASSERT_TRUE(wire::DecodeFrame(frames[1].data(), frames[1].size(), &m, &seq));
  EXPECT_TRUE(receiver.Accept(seq, m, &delivered));
  ASSERT_EQ(delivered.size(), 3u);  // 2 drained 3 from the reorder buffer
  EXPECT_EQ(delivered[1].a, 1u);
  EXPECT_EQ(delivered[2].a, 2u);
  EXPECT_EQ(receiver.watermark(), 3u);

  ASSERT_TRUE(wire::DecodeFrame(frames[0].data(), frames[0].size(), &m, &seq));
  EXPECT_FALSE(receiver.Accept(seq, m, &delivered));  // duplicate
  EXPECT_EQ(delivered.size(), 3u);
  EXPECT_EQ(receiver.duplicates(), 1u);

  sender.Ack(receiver.watermark());
  EXPECT_TRUE(sender.idle());
}

TEST(ReliableChannelTest, RetransmitsOnBackoffUntilAcked) {
  ReliableSender sender{ExponentialBackoff(4, 64)};
  std::vector<uint8_t> frame;
  sender.Stage(SampleMessage(wire::MsgType::kCoarseReport), 10, &frame);

  std::vector<std::vector<uint8_t>> due;
  EXPECT_EQ(sender.DueRetransmits(13, &due), 0u);  // not due until 10 + 4
  EXPECT_TRUE(due.empty());
  uint64_t bytes = sender.DueRetransmits(14, &due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(bytes, due[0].size());
  EXPECT_EQ(due[0], frame);  // bit-identical retransmission
  EXPECT_EQ(sender.retransmissions(), 1u);

  // Backoff doubled: next at 14 + 8.
  due.clear();
  EXPECT_EQ(sender.DueRetransmits(21, &due), 0u);
  EXPECT_EQ(sender.DueRetransmits(22, &due), frame.size());
  EXPECT_EQ(sender.retransmissions(), 2u);

  sender.Ack(1);
  due.clear();
  EXPECT_EQ(sender.DueRetransmits(1000, &due), 0u);
  EXPECT_TRUE(sender.idle());
}

TEST(ReliableChannelTest, CrashResetsResumeTheSequenceSpace) {
  ReliableSender sender{ExponentialBackoff(4, 64)};
  std::vector<uint8_t> frame;
  for (int i = 0; i < 5; ++i) {
    sender.Stage(SampleMessage(wire::MsgType::kCoinReport), 0, &frame);
  }
  sender.Ack(3);
  // Crash: rewind to the snapshot's next_seq. The unacked tail is
  // forgotten — recovery re-stages it with the original numbers.
  sender.Reset(4);
  EXPECT_TRUE(sender.idle());
  frame.clear();
  EXPECT_EQ(sender.Stage(SampleMessage(wire::MsgType::kCoinReport), 0, &frame),
            4u);

  ReliableReceiver receiver;
  std::vector<wire::Message> delivered;
  receiver.Accept(1, SampleMessage(wire::MsgType::kBroadcast), &delivered);
  receiver.Accept(2, SampleMessage(wire::MsgType::kBroadcast), &delivered);
  EXPECT_EQ(receiver.watermark(), 2u);
  receiver.Reset(0);  // crashed site lost everything since watermark 0
  EXPECT_EQ(receiver.watermark(), 0u);
  delivered.clear();
  EXPECT_TRUE(receiver.Accept(1, SampleMessage(wire::MsgType::kBroadcast),
                              &delivered));
  EXPECT_EQ(delivered.size(), 1u);  // re-delivery is fresh after the reset
}

TEST(FaultPlanTest, FromSeedIsDeterministic) {
  FaultPlan a = FaultPlan::FromSeed(1234, 5000, 8);
  FaultPlan b = FaultPlan::FromSeed(1234, 5000, 8);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.duplicate_rate, b.duplicate_rate);
  EXPECT_EQ(a.reorder_rate, b.reorder_rate);
  EXPECT_EQ(a.max_delay_ticks, b.max_delay_ticks);
  EXPECT_EQ(a.snapshot_every, b.snapshot_every);
  ASSERT_EQ(a.site_crashes.size(), b.site_crashes.size());
  for (size_t i = 0; i < a.site_crashes.size(); ++i) {
    EXPECT_EQ(a.site_crashes[i].global_arrival,
              b.site_crashes[i].global_arrival);
    EXPECT_EQ(a.site_crashes[i].site, b.site_crashes[i].site);
  }
  EXPECT_EQ(a.coordinator_restarts, b.coordinator_restarts);

  EXPECT_TRUE(a.HasLinkFaults());
  EXPECT_GE(a.site_crashes.size(), 1u);  // every storm crashes a site
  for (const auto& crash : a.site_crashes) {
    EXPECT_GE(crash.site, 0);
    EXPECT_LT(crash.site, 8);
    EXPECT_GE(crash.global_arrival, 5000u / 4);
    EXPECT_LT(crash.global_arrival, 3u * 5000u / 4);
  }

  FaultPlan c = FaultPlan::FromSeed(1235, 5000, 8);
  EXPECT_NE(a.drop_rate, c.drop_rate);  // different seed, different storm
}

TEST(FaultyLinkTest, DeterministicAndByteExact) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_rate = 0.3;
  plan.duplicate_rate = 0.2;
  plan.reorder_rate = 0.3;
  plan.max_delay_ticks = 3;

  auto run = [&plan](uint64_t link_id) {
    FaultyLink link(&plan, link_id);
    std::vector<std::vector<size_t>> deliveries;
    uint64_t dup_bytes = 0;
    uint64_t offered_check = 0;
    for (int i = 0; i < 200; ++i) {
      std::vector<uint8_t> frame(static_cast<size_t>(16 + (i % 7)),
                                 static_cast<uint8_t>(i));
      offered_check += frame.size();
      dup_bytes += link.Send(std::move(frame), static_cast<uint64_t>(i));
    }
    std::vector<std::vector<uint8_t>> out;
    uint64_t now = 200;
    while (!link.idle()) {
      out.clear();
      if (link.Deliver(++now, &out)) {
        std::vector<size_t> sizes;
        for (const auto& f : out) sizes.push_back(f.size());
        deliveries.push_back(std::move(sizes));
      }
    }
    // Every byte offered is counted: originals (delivered or dropped)
    // plus fault-layer duplicates.
    EXPECT_EQ(link.bytes_offered(), offered_check + dup_bytes);
    return std::make_pair(deliveries, dup_bytes);
  };

  auto first = run(7);
  auto second = run(7);
  EXPECT_EQ(first.first, second.first);  // same link id => same schedule
  EXPECT_EQ(first.second, second.second);

  auto other = run(8);
  EXPECT_NE(first.first, other.first);  // independent per-link streams
}

TEST(FaultyLinkTest, FaultFreeLinkDeliversEverythingNextTick) {
  FaultPlan plan;  // all rates zero
  FaultyLink link(&plan, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(link.Send(std::vector<uint8_t>(8, 1), 5), 0u);
  }
  std::vector<std::vector<uint8_t>> out;
  EXPECT_FALSE(link.Deliver(5, &out));  // not before the next tick
  EXPECT_TRUE(link.Deliver(6, &out));
  EXPECT_EQ(out.size(), 10u);
  EXPECT_TRUE(link.idle());
  EXPECT_EQ(link.bytes_offered(), 80u);
}

}  // namespace
}  // namespace sim
}  // namespace disttrack
